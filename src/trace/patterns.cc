#include "trace/patterns.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace nanobus {

const char *
stressPatternName(StressPattern pattern)
{
    switch (pattern) {
      case StressPattern::AlternatingAll: return "alternating-all";
      case StressPattern::CentreToggle:   return "centre-toggle";
      case StressPattern::WalkingOne:     return "walking-one";
      case StressPattern::RandomUniform:  return "random-uniform";
      case StressPattern::HoldConstant:   return "hold-constant";
    }
    return "?";
}

const std::vector<StressPattern> &
allStressPatterns()
{
    static const std::vector<StressPattern> patterns = {
        StressPattern::AlternatingAll,
        StressPattern::CentreToggle,
        StressPattern::WalkingOne,
        StressPattern::RandomUniform,
        StressPattern::HoldConstant,
    };
    return patterns;
}

PatternTraceSource::PatternTraceSource(StressPattern pattern,
                                       unsigned width,
                                       uint64_t cycles,
                                       AccessKind kind, uint64_t seed)
    : pattern_(pattern), width_(width), cycles_(cycles), kind_(kind),
      rng_(seed)
{
    if (width == 0 || width > 32)
        fatal("PatternTraceSource: width %u outside [1, 32]", width);
}

uint32_t
PatternTraceSource::wordAt(uint64_t cycle)
{
    const uint32_t mask =
        static_cast<uint32_t>(lowMask(width_));
    switch (pattern_) {
      case StressPattern::AlternatingAll:
        return (cycle & 1 ? 0xaaaaaaaau : 0x55555555u) & mask;
      case StressPattern::CentreToggle: {
        // Neighbors held high, centre toggling: the paper's ^^v^^
        // situation sustained.
        uint32_t centre_bit = 1u << (width_ / 2);
        uint32_t steady = mask & ~centre_bit;
        return steady | (cycle & 1 ? centre_bit : 0u);
      }
      case StressPattern::WalkingOne:
        return (1u << (cycle % width_)) & mask;
      case StressPattern::RandomUniform:
        return static_cast<uint32_t>(rng_.next()) & mask;
      case StressPattern::HoldConstant:
        return 0x2d2d2d2du & mask;
    }
    panic("PatternTraceSource: bad pattern");
}

bool
PatternTraceSource::next(TraceRecord &out)
{
    if (cycle_ >= cycles_)
        return false;
    out.cycle = cycle_;
    out.kind = kind_;
    out.address = wordAt(cycle_);
    ++cycle_;
    return true;
}

} // namespace nanobus
