#include "trace/synthetic.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace nanobus {

namespace {

/** Base of the text segment; typical for 32-bit executables. */
constexpr uint32_t code_base_addr = 0x00010000u;

/** Base of the first data region. */
constexpr uint32_t data_base_addr = 0x20000000u;

/** Spacing between data regions; differs in high-order address bits. */
constexpr uint32_t data_region_spread = 0x08000000u;

/** Top of the downward-growing stack region. */
constexpr uint32_t stack_base_addr = 0xffbe0000u;

/** Bytes per stack frame (return address, saves, locals). */
constexpr uint32_t stack_frame_bytes = 96;

} // anonymous namespace

SyntheticCpu::SyntheticCpu(const BenchmarkProfile &profile,
                           uint64_t seed, uint64_t max_cycles)
    : profile_(profile), rng_(seed ^ 0x6e616e6f62757300ull),
      max_cycles_(max_cycles), code_base_(code_base_addr),
      pc_(code_base_addr)
{
    profile_.validate();
    if (profile_.num_regions > 16)
        fatal("SyntheticCpu: more than 16 data regions (%u) would "
              "overflow the 32-bit address space",
              profile_.num_regions);

    // Spread the stride streams over the regions round-robin so that
    // switching streams flips high-order address bits (the behaviour
    // the paper calls out for OEBI/CBI on real address streams).
    streams_.resize(profile_.num_streams);
    for (unsigned i = 0; i < profile_.num_streams; ++i) {
        unsigned region = i % profile_.num_regions;
        streams_[i].region_base =
            data_base_addr + region * data_region_spread;
        // Offset start positions so streams do not collide.
        streams_[i].cursor =
            (i / profile_.num_regions) *
            (profile_.data_footprint / std::max(1u,
                                                profile_.num_streams));
        streams_[i].cursor &= ~3u;
    }
}

uint32_t
SyntheticCpu::wrapCode(uint64_t addr) const
{
    uint64_t offset = (addr - code_base_) % profile_.code_footprint;
    return code_base_ + static_cast<uint32_t>(offset & ~3ull);
}

void
SyntheticCpu::updatePhase()
{
    if (profile_.phase_mean_cycles <= 0.0 ||
        profile_.phase_swing <= 1.0) {
        return;
    }
    if (phase_cycles_left_ == 0) {
        // New phase: branchiness scaled log-uniformly in
        // [1/swing, swing]; length exponentially distributed.
        double log_swing = std::log(profile_.phase_swing);
        phase_scale_ = std::exp(
            rng_.uniform(-log_swing, log_swing));
        double length = rng_.exponential(profile_.phase_mean_cycles);
        phase_cycles_left_ = length < 1000.0
            ? 1000
            : static_cast<uint64_t>(length);
    }
    --phase_cycles_left_;
}

void
SyntheticCpu::advancePc()
{
    // Abandoned loops: a call or branch may have left the active loop
    // body entirely; drop such stale entries.
    while (!loop_stack_.empty()) {
        const Loop &top = loop_stack_.back();
        if (pc_ < top.start || pc_ > top.end)
            loop_stack_.pop_back();
        else
            break;
    }

    // Loop back-edge: at the loop-ending branch, either iterate or
    // fall out.
    if (!loop_stack_.empty() && pc_ == loop_stack_.back().end) {
        Loop &top = loop_stack_.back();
        if (top.trips_left > 1) {
            --top.trips_left;
            pc_ = top.start;
        } else {
            loop_stack_.pop_back();
            pc_ = wrapCode(static_cast<uint64_t>(pc_) + 4);
        }
        return;
    }

    // Phases modulate how call/branch-heavy the code is. Calls and
    // returns are the far jumps that dominate fetch-address Hamming
    // distance, so scaling them is what makes instruction-bus energy
    // fluctuate at interval scale (paper, Sec 5.3.1).
    double call_prob =
        std::min(0.5, profile_.call_prob * phase_scale_);
    double return_prob =
        std::min(0.5, profile_.return_prob * phase_scale_);

    if (!call_stack_.empty() && rng_.chance(return_prob)) {
        pc_ = call_stack_.back();
        call_stack_.pop_back();
        return;
    }

    if (rng_.chance(call_prob)) {
        if (call_stack_.size() < max_call_depth)
            call_stack_.push_back(
                wrapCode(static_cast<uint64_t>(pc_) + 4));
        // Functions start at 16-byte-aligned addresses.
        uint64_t target = rng_.below(profile_.code_footprint) & ~15ull;
        pc_ = wrapCode(code_base_ + target);
        return;
    }

    double branch_prob =
        std::min(0.7, profile_.branch_prob * phase_scale_);
    if (rng_.chance(branch_prob)) {
        if (loop_stack_.size() < max_loop_depth &&
            rng_.chance(profile_.loop_prob)) {
            // Enter a fresh loop starting at the next instruction.
            Loop loop;
            loop.start = wrapCode(static_cast<uint64_t>(pc_) + 4);
            uint64_t body = 4 * (1 + rng_.geometric(
                1.0 / profile_.loop_body_mean));
            // Keep the body inside the code footprint so the
            // back-edge test (pc == end) is reachable.
            body = std::min<uint64_t>(body,
                                      profile_.code_footprint / 2);
            loop.end = wrapCode(loop.start + body);
            if (loop.end > loop.start) {
                loop.trips_left =
                    1 + rng_.geometric(1.0 / profile_.loop_trips_mean);
                loop_stack_.push_back(loop);
            }
            pc_ = loop.start;
            return;
        }
        // Plain taken branch: Pareto-tailed displacement, mostly
        // forward.
        uint64_t magnitude = 4 * rng_.paretoJump(
            profile_.branch_alpha, profile_.code_footprint / 8);
        bool forward = rng_.chance(0.6);
        uint64_t target = forward
            ? static_cast<uint64_t>(pc_) + magnitude
            : static_cast<uint64_t>(pc_) + profile_.code_footprint -
                (magnitude % profile_.code_footprint);
        pc_ = wrapCode(target);
        return;
    }

    pc_ = wrapCode(static_cast<uint64_t>(pc_) + 4);
}

uint32_t
SyntheticCpu::stackAddress()
{
    // Frame at the current call depth, plus a small local offset —
    // alternating with heap/global accesses this flips the many
    // high-order bits separating the 0xffbe0000 stack from the
    // 0x2xxxxxxx data regions, as on a real 32-bit machine.
    uint32_t depth = static_cast<uint32_t>(call_stack_.size());
    uint32_t frame_top = stack_base_addr - depth * stack_frame_bytes;
    uint32_t local = static_cast<uint32_t>(rng_.below(24)) * 4;
    return frame_top - local - 4;
}

uint32_t
SyntheticCpu::dataAddress()
{
    if (rng_.chance(profile_.stack_access_prob))
        return stackAddress();

    if (rng_.chance(profile_.pointer_chase_prob)) {
        if (rng_.chance(profile_.region_jump_prob)) {
            chase_region_ = static_cast<unsigned>(
                rng_.below(profile_.num_regions));
        }
        uint32_t base = data_base_addr +
            chase_region_ * data_region_spread;
        uint32_t offset = static_cast<uint32_t>(
            rng_.below(profile_.data_footprint)) & ~3u;
        return base + offset;
    }

    if (rng_.chance(profile_.stream_switch_prob)) {
        active_stream_ = static_cast<unsigned>(
            rng_.below(profile_.num_streams));
    }
    Stream &stream = streams_[active_stream_];
    stream.cursor += profile_.stream_stride;
    if (stream.cursor >= profile_.data_footprint)
        stream.cursor = 0;
    return stream.region_base + stream.cursor;
}

void
SyntheticCpu::stepCycle(TraceRecord &fetch,
                        std::optional<TraceRecord> &data)
{
    updatePhase();

    fetch.cycle = cycle_;
    fetch.address = pc_;
    fetch.kind = AccessKind::InstructionFetch;

    data.reset();
    double draw = rng_.uniform();
    if (draw < profile_.load_prob + profile_.store_prob) {
        TraceRecord d;
        d.cycle = cycle_;
        d.address = dataAddress();
        d.kind = draw < profile_.load_prob ? AccessKind::Load
                                           : AccessKind::Store;
        data = d;
    }

    advancePc();
    ++cycle_;
}

bool
SyntheticCpu::next(TraceRecord &out)
{
    if (pending_data_) {
        out = *pending_data_;
        pending_data_.reset();
        return true;
    }
    if (exhausted_ || (max_cycles_ != 0 && cycle_ >= max_cycles_)) {
        exhausted_ = true;
        return false;
    }
    TraceRecord fetch;
    stepCycle(fetch, pending_data_);
    out = fetch;
    return true;
}

void
SyntheticCpu::warmUp(uint64_t cycles)
{
    TraceRecord fetch;
    std::optional<TraceRecord> data;
    for (uint64_t i = 0; i < cycles; ++i)
        stepCycle(fetch, data);
    pending_data_.reset();
}

IdleInjector::IdleInjector(TraceSource &inner, uint64_t active_cycles,
                           uint64_t idle_cycles)
    : inner_(inner), active_cycles_(active_cycles),
      idle_cycles_(idle_cycles)
{
    if (active_cycles == 0)
        fatal("IdleInjector: active window must be positive");
}

bool
IdleInjector::next(TraceRecord &out)
{
    if (!inner_.next(out))
        return false;
    uint64_t completed_windows = out.cycle / active_cycles_;
    out.cycle += completed_windows * idle_cycles_;
    return true;
}

} // namespace nanobus
