/**
 * @file
 * Trace file IO.
 *
 * Two formats:
 *  - text: one record per line, `<cycle> <kind> <hex address>` with
 *    kind one of I/L/S; lines starting with '#' are comments.
 *  - binary: a 8-byte header ("NBTR" magic + version) followed by
 *    packed little-endian records (u64 cycle, u32 address, u8 kind)
 *    — 13 bytes/record, ~3x smaller and much faster to parse for
 *    the paper-scale 300M-cycle traces.
 */

#ifndef NANOBUS_TRACE_IO_HH
#define NANOBUS_TRACE_IO_HH

#include <fstream>
#include <string>
#include <vector>

#include "trace/record.hh"

namespace nanobus {

/** Streamed text-format trace writer. */
class TraceWriter
{
  public:
    /** Open `path`, truncating; calls fatal() on failure. */
    explicit TraceWriter(const std::string &path);

    /** Append one record. */
    void write(const TraceRecord &record);

    /** Append a comment line. */
    void comment(const std::string &text);

    /** Flush to disk. */
    void flush();

  private:
    std::ofstream out_;
};

/** Streamed text-format trace reader implementing TraceSource. */
class TraceReader : public TraceSource
{
  public:
    /** Open `path`; calls fatal() on failure. */
    explicit TraceReader(const std::string &path);

    bool next(TraceRecord &out) override;

  private:
    std::ifstream in_;
    std::string path_;
    size_t line_ = 0;
};

/** Streamed binary-format trace writer. */
class BinaryTraceWriter
{
  public:
    /** Open `path`, truncating, and emit the header. */
    explicit BinaryTraceWriter(const std::string &path);

    /** Append one record. */
    void write(const TraceRecord &record);

    /** Flush to disk. */
    void flush();

  private:
    std::ofstream out_;
};

/** Streamed binary-format trace reader implementing TraceSource. */
class BinaryTraceReader : public TraceSource
{
  public:
    /** Open `path` and validate the header; fatal() on mismatch. */
    explicit BinaryTraceReader(const std::string &path);

    bool next(TraceRecord &out) override;

  private:
    std::ifstream in_;
    std::string path_;
};

/** Read a whole trace file into memory. */
std::vector<TraceRecord> readTraceFile(const std::string &path);

/** Write a whole trace to a file. */
void writeTraceFile(const std::string &path,
                    const std::vector<TraceRecord> &records);

} // namespace nanobus

#endif // NANOBUS_TRACE_IO_HH
