/**
 * @file
 * Trace file IO.
 *
 * Two formats:
 *  - text: one record per line, `<cycle> <kind> <hex address>` with
 *    kind one of I/L/S; lines starting with '#' are comments.
 *  - binary: a 8-byte header ("NBTR" magic + version) followed by
 *    packed little-endian records (u64 cycle, u32 address, u8 kind)
 *    — 13 bytes/record, ~3x smaller and much faster to parse for
 *    the paper-scale 300M-cycle traces.
 *
 * Error handling follows docs/ROBUSTNESS.md: open failures and
 * structural defects (bad magic, truncated binary records) are
 * fatal(); *content* defects in text traces (malformed lines) are
 * recoverable — TraceReader skips them up to a configurable error
 * budget and reports the skip count, so one corrupted line in a
 * multi-gigabyte trace does not kill a batch sweep. Writers latch
 * and report stream failures instead of silently losing records.
 */

#ifndef NANOBUS_TRACE_IO_HH
#define NANOBUS_TRACE_IO_HH

#include <fstream>
#include <string>
#include <vector>

#include "trace/record.hh"
#include "util/result.hh"

namespace nanobus {

/** Streamed text-format trace writer. */
class TraceWriter
{
  public:
    /** Open `path`, truncating; calls fatal() on failure. */
    explicit TraceWriter(const std::string &path);

    /** Append one record. A stream failure latches good() to false
     *  and warns once; flush() escalates it to fatal(). */
    void write(const TraceRecord &record);

    /** Append a comment line. */
    void comment(const std::string &text);

    /** Flush to disk; calls fatal() if any write failed, so record
     *  loss is never silent. */
    void flush();

    /** True while every write so far has succeeded. */
    bool good() const { return !failed_ && out_.good(); }

  private:
    void noteFailure();

    std::ofstream out_;
    std::string path_;
    bool failed_ = false;
};

/** Streamed text-format trace reader implementing TraceSource. */
class TraceReader : public TraceSource
{
  public:
    /**
     * Open `path`; calls fatal() on failure.
     *
     * @param error_budget Number of malformed lines to skip (with a
     *        warning) before giving up; skipping past the budget is
     *        fatal(). 0 keeps the strict historical behaviour where
     *        the first malformed line is fatal.
     */
    explicit TraceReader(const std::string &path,
                         size_t error_budget = 0);

    bool next(TraceRecord &out) override;

    /**
     * Close and reopen the trace from the beginning, clearing the
     * line and skip counters (the error budget is kept). The rewind
     * seam for retried jobs and checkpoint resume: a reader whose
     * stream went bad (or that is simply mid-file) comes back to a
     * pristine start-of-trace state. Returns IoError — not fatal() —
     * when the file cannot be reopened, since a retry path must be
     * able to observe and handle the failure.
     */
    [[nodiscard]] Status reopen();

    /** Adjust the malformed-line budget mid-stream. */
    void setErrorBudget(size_t budget) { error_budget_ = budget; }

    /** Malformed lines skipped so far. */
    size_t skippedLines() const { return skipped_; }

    /** Lines (records, comments, or skipped garbage) consumed. */
    size_t linesRead() const { return line_; }

  private:
    std::ifstream in_;
    std::string path_;
    size_t line_ = 0;
    size_t error_budget_ = 0;
    size_t skipped_ = 0;
};

/** Streamed binary-format trace writer. */
class BinaryTraceWriter
{
  public:
    /** Open `path`, truncating, and emit the header. */
    explicit BinaryTraceWriter(const std::string &path);

    /** Append one record (failures latch good(), see TraceWriter). */
    void write(const TraceRecord &record);

    /** Flush to disk; fatal() if any write failed. */
    void flush();

    /** True while every write so far has succeeded. */
    bool good() const { return !failed_ && out_.good(); }

  private:
    void noteFailure();

    std::ofstream out_;
    std::string path_;
    bool failed_ = false;
};

/** Streamed binary-format trace reader implementing TraceSource. */
class BinaryTraceReader : public TraceSource
{
  public:
    /** Open `path` and validate the header; fatal() on mismatch or
     *  truncation. */
    explicit BinaryTraceReader(const std::string &path);

    bool next(TraceRecord &out) override;

  private:
    std::ifstream in_;
    std::string path_;
};

/** Read a whole trace file into memory. */
std::vector<TraceRecord> readTraceFile(const std::string &path);

/** Write a whole trace to a file. */
void writeTraceFile(const std::string &path,
                    const std::vector<TraceRecord> &records);

} // namespace nanobus

#endif // NANOBUS_TRACE_IO_HH
