#include "trace/record.hh"

#include <utility>

namespace nanobus {

const char *
accessKindName(AccessKind kind)
{
    switch (kind) {
      case AccessKind::InstructionFetch: return "ifetch";
      case AccessKind::Load:             return "load";
      case AccessKind::Store:            return "store";
    }
    return "?";
}

VectorTraceSource::VectorTraceSource(std::vector<TraceRecord> records)
    : records_(std::move(records))
{
}

bool
VectorTraceSource::next(TraceRecord &out)
{
    if (pos_ >= records_.size())
        return false;
    out = records_[pos_++];
    return true;
}

} // namespace nanobus
