#include "trace/batch.hh"

#include <exception>
#include <string>

#include "exec/thread_pool.hh"
#include "util/faultinject.hh"
#include "util/logging.hh"

namespace nanobus {

namespace {

/** Read up to `limit` records from `source` into `out` (cleared
 *  first). Returns true when the source is exhausted, false when
 *  more records remain. Everything fallible is latched into the
 *  Result per the trace layer's IoError convention
 *  (docs/ROBUSTNESS.md): a throwing source is captured at the call
 *  site, and the injected TransientIo fault — which counts one call
 *  per fill so tests can target the Nth batch deterministically —
 *  reports the same way a flaky filesystem read would. */
Result<bool>
readUpTo(TraceSource &source, size_t limit,
         std::vector<TraceRecord> &out)
{
    if (FaultInjector::active() &&
        FaultInjector::instance().fireCallFault(
            FaultSite::TransientIo)) {
        return Error{ErrorCode::IoError,
                     "injected transient I/O fault "
                     "(FaultSite::TransientIo)"};
    }
    out.clear();
    TraceRecord record;
    while (out.size() < limit) {
        bool more = false;
        try {
            more = source.next(record);
        } catch (const std::exception &e) {
            return Error{ErrorCode::IoError,
                         std::string("trace source failed: ") +
                             e.what()};
        } catch (...) {
            return Error{ErrorCode::IoError,
                         "trace source failed with a non-standard "
                         "exception"};
        }
        if (!more)
            return true;
        out.push_back(record);
    }
    return false;
}

} // anonymous namespace

// ---------------------------------------------------------------- //
// BatchReader

BatchReader::BatchReader(TraceSource &source, size_t batch_size)
    : source_(source), batch_size_(batch_size)
{
    if (batch_size_ == 0)
        fatal("BatchReader: batch size must be positive");
    buffer_.reserve(batch_size_);
}

Result<RecordBatch>
BatchReader::nextBatch()
{
    if (error_)
        return *error_;
    if (finished_)
        return RecordBatch{};
    Result<bool> filled = readUpTo(source_, batch_size_, buffer_);
    if (!filled.ok()) {
        error_ = filled.error();
        return *error_;
    }
    finished_ = filled.value();
    return RecordBatch{buffer_.data(), buffer_.size()};
}

void
BatchReader::restart()
{
    error_.reset();
    finished_ = false;
    buffer_.clear();
}

// ---------------------------------------------------------------- //
// PrefetchReader

PrefetchReader::PrefetchReader(TraceSource &source,
                               exec::ThreadPool &pool,
                               size_t batch_size)
    : source_(source), pool_(pool), batch_size_(batch_size)
{
    if (batch_size_ == 0)
        fatal("PrefetchReader: batch size must be positive");
    // No reserve here on purpose: the buffers grow inside fillBack(),
    // which runs on a pool worker, so their pages first-touch onto
    // the filling worker's NUMA node rather than the consumer's
    // (docs/PARALLELISM.md). After the first swap cycle both buffers
    // are at full capacity and no further allocation happens.
    startFill();
}

PrefetchReader::~PrefetchReader()
{
    // A fill task captures `this`; it must not outlive us.
    if (inflight_)
        waitFill();
}

void
PrefetchReader::fillBack()
{
    Result<bool> filled = readUpTo(source_, batch_size_, back_);
    if (filled.ok())
        back_exhausted_ = filled.value();
    else
        back_error_ = filled.error();
}

void
PrefetchReader::startFill()
{
    back_exhausted_ = false;
    back_error_.reset();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        inflight_ = true;
        fill_done_ = false;
    }
    // With pool size 1 submit() runs the fill inline before
    // returning, which degrades the prefetch to a synchronous
    // read-ahead — same batches, same bits, no threads.
    pool_.submit([this] {
        fillBack();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            fill_done_ = true;
        }
        cv_.notify_all();
    });
}

void
PrefetchReader::waitFill()
{
    // Drain the pool while waiting so the consumer contributes
    // (possibly executing its own fill) instead of idling; fall
    // back to sleeping only when no task is runnable.
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (fill_done_)
                break;
        }
        if (!pool_.tryRunOneTask()) {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [&] { return fill_done_; });
            break;
        }
    }
    inflight_ = false;
}

Result<RecordBatch>
PrefetchReader::nextBatch()
{
    if (error_)
        return *error_;
    if (finished_)
        return RecordBatch{};

    waitFill();
    if (back_error_) {
        error_ = back_error_;
        return *error_;
    }
    front_.swap(back_);
    if (back_exhausted_) {
        // Nothing beyond the batch being handed over; don't touch
        // the source again.
        finished_ = true;
    } else {
        startFill();
    }
    return RecordBatch{front_.data(), front_.size()};
}

void
PrefetchReader::restart()
{
    // Join any in-flight fill first: its task captures `this` and may
    // still be reading the (now stale) source position.
    if (inflight_)
        waitFill();
    error_.reset();
    finished_ = false;
    back_error_.reset();
    back_exhausted_ = false;
    front_.clear();
    back_.clear();
    startFill();
}

void
forEachBatch(TraceSource &source,
             const std::function<void(const RecordBatch &)> &fn,
             size_t batch_size)
{
    BatchReader batches(source, batch_size);
    for (;;) {
        Result<RecordBatch> next = batches.nextBatch();
        if (!next.ok())
            fatal("forEachBatch: trace stream failed (%s)",
                  next.error().describe().c_str());
        if (next.value().empty())
            return;
        fn(next.value());
    }
}

} // namespace nanobus
