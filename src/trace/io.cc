#include "trace/io.hh"

#include <cinttypes>
#include <cstring>
#include <cstdio>

#include "util/faultinject.hh"
#include "util/logging.hh"

namespace nanobus {

namespace {

/** Number of individually warned skips before going quiet. */
constexpr size_t skip_warn_limit = 5;

char
kindLetter(AccessKind kind)
{
    switch (kind) {
      case AccessKind::InstructionFetch: return 'I';
      case AccessKind::Load:             return 'L';
      case AccessKind::Store:            return 'S';
    }
    // Emitting a placeholder here would round-trip into a reader
    // parse failure far from the cause; an unknown kind is a nanobus
    // bug and must stop at its origin.
    panic("kindLetter: unknown access kind %u",
          static_cast<unsigned>(kind));
}

bool
kindFromLetter(char c, AccessKind &kind)
{
    switch (c) {
      case 'I': kind = AccessKind::InstructionFetch; return true;
      case 'L': kind = AccessKind::Load;             return true;
      case 'S': kind = AccessKind::Store;            return true;
      default:  return false;
    }
}

} // anonymous namespace

TraceWriter::TraceWriter(const std::string &path)
    : out_(path), path_(path)
{
    if (!out_)
        fatal("TraceWriter: cannot open '%s' for writing",
              path.c_str());
}

void
TraceWriter::noteFailure()
{
    if (failed_)
        return;
    failed_ = true;
    warn("TraceWriter: write to '%s' failed (disk full?); records "
         "are being lost", path_.c_str());
}

void
TraceWriter::write(const TraceRecord &record)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 " %c %08x\n",
                  record.cycle, kindLetter(record.kind),
                  record.address);
    out_ << buf;
    if (!out_)
        noteFailure();
}

void
TraceWriter::comment(const std::string &text)
{
    out_ << "# " << text << '\n';
    if (!out_)
        noteFailure();
}

void
TraceWriter::flush()
{
    out_.flush();
    if (failed_ || !out_)
        fatal("TraceWriter: failed to write '%s' (disk full?)",
              path_.c_str());
}

TraceReader::TraceReader(const std::string &path, size_t error_budget)
    : in_(path), path_(path), error_budget_(error_budget)
{
    if (!in_)
        fatal("TraceReader: cannot open '%s'", path.c_str());
}

Status
TraceReader::reopen()
{
    in_.close();
    in_.clear();
    in_.open(path_);
    if (!in_) {
        return Status::failure(
            ErrorCode::IoError,
            "TraceReader: cannot reopen '" + path_ + "'");
    }
    line_ = 0;
    skipped_ = 0;
    return Status();
}

bool
TraceReader::next(TraceRecord &out)
{
    std::string line;
    while (std::getline(in_, line)) {
        ++line_;
        if (FaultInjector::active())
            FaultInjector::instance().corruptLine(line);
        if (line.empty() || line[0] == '#')
            continue;
        uint64_t cycle = 0;
        char kind_char = 0;
        unsigned address = 0;
        AccessKind kind = AccessKind::InstructionFetch;
        bool parsed =
            std::sscanf(line.c_str(), "%" SCNu64 " %c %x",
                        &cycle, &kind_char, &address) == 3 &&
            kindFromLetter(kind_char, kind);
        if (!parsed) {
            if (skipped_ >= error_budget_)
                fatal("TraceReader: %s:%zu: malformed record '%s' "
                      "(%zu already skipped, budget %zu)",
                      path_.c_str(), line_, line.c_str(), skipped_,
                      error_budget_);
            ++skipped_;
            if (skipped_ <= skip_warn_limit)
                warn("TraceReader: %s:%zu: skipping malformed record "
                     "'%s' (%zu/%zu)", path_.c_str(), line_,
                     line.c_str(), skipped_, error_budget_);
            if (skipped_ == skip_warn_limit && error_budget_ > skip_warn_limit)
                warn("TraceReader: %s: further skips reported only "
                     "via skippedLines()", path_.c_str());
            continue;
        }
        out.cycle = cycle;
        out.kind = kind;
        out.address = address;
        return true;
    }
    if (skipped_ > 0)
        inform("TraceReader: %s: skipped %zu malformed line(s) of %zu",
               path_.c_str(), skipped_, line_);
    return false;
}

namespace {

/** Binary format header: magic + format version. */
constexpr char binary_magic[4] = {'N', 'B', 'T', 'R'};
constexpr uint32_t binary_version = 1;

void
putLe(std::ofstream &out, uint64_t value, unsigned bytes)
{
    for (unsigned i = 0; i < bytes; ++i)
        out.put(static_cast<char>((value >> (8 * i)) & 0xff));
}

bool
getLe(std::ifstream &in, uint64_t &value, unsigned bytes,
      const char *path, const char *what)
{
    value = 0;
    for (unsigned i = 0; i < bytes; ++i) {
        int c = in.get();
        if (c == EOF) {
            if (i == 0)
                return false; // clean end of stream
            fatal("binary trace: %s: truncated %s", path, what);
        }
        value |= static_cast<uint64_t>(c & 0xff) << (8 * i);
    }
    return true;
}

} // anonymous namespace

BinaryTraceWriter::BinaryTraceWriter(const std::string &path)
    : out_(path, std::ios::binary), path_(path)
{
    if (!out_)
        fatal("BinaryTraceWriter: cannot open '%s' for writing",
              path.c_str());
    out_.write(binary_magic, sizeof(binary_magic));
    putLe(out_, binary_version, 4);
}

void
BinaryTraceWriter::noteFailure()
{
    if (failed_)
        return;
    failed_ = true;
    warn("BinaryTraceWriter: write to '%s' failed (disk full?); "
         "records are being lost", path_.c_str());
}

void
BinaryTraceWriter::write(const TraceRecord &record)
{
    putLe(out_, record.cycle, 8);
    putLe(out_, record.address, 4);
    putLe(out_, static_cast<uint64_t>(record.kind), 1);
    if (!out_)
        noteFailure();
}

void
BinaryTraceWriter::flush()
{
    out_.flush();
    if (failed_ || !out_)
        fatal("BinaryTraceWriter: failed to write '%s' (disk full?)",
              path_.c_str());
}

BinaryTraceReader::BinaryTraceReader(const std::string &path)
    : in_(path, std::ios::binary), path_(path)
{
    if (!in_)
        fatal("BinaryTraceReader: cannot open '%s'", path.c_str());
    char magic[4];
    in_.read(magic, sizeof(magic));
    if (in_.gcount() != sizeof(magic) ||
        std::memcmp(magic, binary_magic, sizeof(magic)) != 0)
        fatal("BinaryTraceReader: '%s' is not a nanobus binary "
              "trace", path.c_str());
    uint64_t version = 0;
    if (!getLe(in_, version, 4, path_.c_str(), "header") ||
        version != binary_version)
        fatal("BinaryTraceReader: '%s' has unsupported version %llu",
              path.c_str(),
              static_cast<unsigned long long>(version));
}

bool
BinaryTraceReader::next(TraceRecord &out)
{
    uint64_t cycle = 0;
    if (!getLe(in_, cycle, 8, path_.c_str(), "record"))
        return false;
    uint64_t address = 0, kind = 0;
    if (!getLe(in_, address, 4, path_.c_str(), "record") ||
        !getLe(in_, kind, 1, path_.c_str(), "record"))
        fatal("BinaryTraceReader: %s: truncated record",
              path_.c_str());
    if (kind > static_cast<uint64_t>(AccessKind::Store))
        fatal("BinaryTraceReader: %s: bad access kind %llu",
              path_.c_str(), static_cast<unsigned long long>(kind));
    out.cycle = cycle;
    out.address = static_cast<uint32_t>(address);
    out.kind = static_cast<AccessKind>(kind);
    return true;
}

std::vector<TraceRecord>
readTraceFile(const std::string &path)
{
    TraceReader reader(path);
    std::vector<TraceRecord> records;
    TraceRecord record;
    while (reader.next(record))
        records.push_back(record);
    return records;
}

void
writeTraceFile(const std::string &path,
               const std::vector<TraceRecord> &records)
{
    TraceWriter writer(path);
    for (const auto &record : records)
        writer.write(record);
    writer.flush();
}

} // namespace nanobus
