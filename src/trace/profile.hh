/**
 * @file
 * SPEC CPU2000 benchmark behaviour profiles.
 *
 * The paper traces eight SPEC CPU2000 programs through SHADE on a
 * SPARC-V9 (Sec 5.1). Neither SPEC binaries nor SHADE are available
 * here, so nanobus substitutes a parameterized synthetic CPU front
 * end (trace/synthetic.hh); each profile below captures the address
 * stream *structure* of one benchmark — branch density, loop
 * behaviour, load/store duty cycle, stride regularity, pointer
 * chasing, and working-set spread — which is the entirety of what the
 * bus energy/thermal models observe. Parameter values are
 * literature-informed estimates, documented per field.
 */

#ifndef NANOBUS_TRACE_PROFILE_HH
#define NANOBUS_TRACE_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nanobus {

/** Synthetic-workload parameters for one benchmark. */
struct BenchmarkProfile
{
    /** Benchmark name, e.g. "eon". */
    std::string name;
    /** True for SPEC floating-point programs. */
    bool floating_point = false;

    // ---- instruction stream ----
    /** Probability an instruction redirects fetch (taken CTI). */
    double branch_prob = 0.12;
    /** Probability an instruction is a call (pushes return address). */
    double call_prob = 0.02;
    /** Per-cycle probability of returning when the stack is
     *  non-empty. */
    double return_prob = 0.02;
    /** Given a redirect, probability it starts/continues a loop. */
    double loop_prob = 0.5;
    /** Mean loop body length in instructions (geometric). */
    double loop_body_mean = 24.0;
    /** Mean loop trip count (geometric). */
    double loop_trips_mean = 50.0;
    /** Pareto tail exponent for non-loop branch displacements. */
    double branch_alpha = 1.1;
    /** Code footprint [bytes]; fetch addresses wrap within it. */
    uint32_t code_footprint = 128 * 1024;

    // ---- data stream ----
    /** Probability an instruction issues a load. */
    double load_prob = 0.25;
    /** Probability an instruction issues a store. */
    double store_prob = 0.10;
    /** Number of concurrent stride streams (array sweeps). */
    unsigned num_streams = 4;
    /** Stream stride [bytes]. */
    uint32_t stream_stride = 8;
    /** Per-access probability of rotating the active stream. */
    double stream_switch_prob = 0.05;
    /** Per-access probability the access is a pointer chase
     *  (random within a region) instead of a stride stream. */
    double pointer_chase_prob = 0.2;
    /** Per-chase probability of jumping to a different region. */
    double region_jump_prob = 0.03;
    /** Data working set per region [bytes]. */
    uint32_t data_footprint = 2 * 1024 * 1024;
    /** Number of distinct data regions (spread over the VA space). */
    unsigned num_regions = 4;
    /**
     * Per-access probability the access targets the stack (locals,
     * spills, arguments). Stack addresses live near the top of the
     * 32-bit VA space, so alternating stack/heap accesses flip many
     * high-order address bits — the dominant source of high-Hamming
     * transitions on real data address buses.
     */
    double stack_access_prob = 0.2;

    // ---- phase behaviour ----
    /**
     * Mean length [cycles] of a program phase. At each phase
     * boundary the control-flow intensity is rescaled, producing the
     * interval-scale fluctuation in instruction-bus energy the paper
     * observes (Sec 5.3.1). Zero disables phase modulation.
     */
    double phase_mean_cycles = 200000.0;
    /**
     * Phase branchiness swing r >= 1: per phase, the control-flow
     * probabilities (branch/call/return) are scaled by a factor
     * drawn log-uniformly from [1/r, r].
     */
    double phase_swing = 3.0;

    /** Validate invariants; calls fatal() on nonsense values. */
    void validate() const;
};

/** Names of the paper's eight benchmarks (integer first). */
const std::vector<std::string> &allBenchmarkNames();

/** The paper's integer benchmarks: eon, crafty, twolf, mcf. */
const std::vector<std::string> &integerBenchmarkNames();

/** The paper's floating-point benchmarks: applu, swim, art, ammp. */
const std::vector<std::string> &floatingPointBenchmarkNames();

/**
 * Built-in profile for one of the paper's benchmarks. Calls fatal()
 * for unknown names.
 */
const BenchmarkProfile &benchmarkProfile(const std::string &name);

} // namespace nanobus

#endif // NANOBUS_TRACE_PROFILE_HH
