/**
 * @file
 * Batched trace streaming: RecordBatch spans, the BatchSource
 * interface, a synchronous BatchReader, and a double-buffered
 * PrefetchReader that overlaps the next batch's file I/O with the
 * current batch's simulation.
 *
 * The paper's Sec 5 methodology replays 300M-cycle address traces;
 * at that scale per-record virtual dispatch and serial read-I/O
 * between parallel regions dominate the replay loop. This layer
 * turns a pull-based TraceSource into fixed-size batches with one
 * hard contract (docs/PIPELINE.md):
 *
 * > **Batch boundaries are a pure function of (source contents,
 * > batch_size).** Neither the pool size nor scheduling order moves
 * > a record between batches, so every consumer that preserves
 * > per-batch record order — SimPipeline does — produces results
 * > bit-identical to the per-record replay.
 *
 * Error handling follows docs/ROBUSTNESS.md: sources that fail by
 * calling fatal() (TraceReader past its error budget) still
 * terminate; sources that *throw* have the exception captured —
 * even when it was raised on a prefetch worker — and surfaced to
 * the consumer as a Result error, with the error latched so every
 * later nextBatch() reports it again. A batch in which the fault
 * occurred is dropped whole: consumers never see a partially-read
 * batch followed by an error.
 */

#ifndef NANOBUS_TRACE_BATCH_HH
#define NANOBUS_TRACE_BATCH_HH

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "trace/record.hh"
#include "util/logging.hh"
#include "util/result.hh"

namespace nanobus {

namespace exec {
class ThreadPool;
} // namespace exec

/** Default records per batch; amortizes dispatch without letting the
 *  double buffers outgrow the L2 (8192 records = 104 KiB text /
 *  ~192 KiB in memory). */
constexpr size_t kDefaultTraceBatchSize = 8192;

/**
 * A borrowed, read-only span of trace records. Valid until the next
 * nextBatch() call on the producing source (the producer owns the
 * storage). An empty batch signals end of stream.
 */
struct RecordBatch
{
    const TraceRecord *records = nullptr;
    size_t count = 0;

    size_t size() const { return count; }
    bool empty() const { return count == 0; }
    const TraceRecord &operator[](size_t i) const { return records[i]; }
    const TraceRecord *begin() const { return records; }
    const TraceRecord *end() const { return records + count; }
};

/**
 * Split a batch into two SoA sinks by access kind: instruction
 * fetches to `fetch_sink`, loads/stores to `data_sink`. A sink
 * provides `add(uint64_t cycle, uint32_t address)` appending to its
 * u64 cycle/address lanes (fabric's BusBatch is the canonical one);
 * widening to u64 happens here so downstream encode stages consume
 * the lanes directly with the SIMD batch kernels (util/simd.hh).
 * Record order is preserved within each sink, which is what keeps
 * batched ingest bit-identical to per-record routing.
 */
template <typename Sink>
inline void
scatterByKind(const RecordBatch &batch, Sink &fetch_sink,
              Sink &data_sink)
{
    for (const TraceRecord &record : batch) {
        if (record.kind == AccessKind::InstructionFetch)
            fetch_sink.add(record.cycle, record.address);
        else
            data_sink.add(record.cycle, record.address);
    }
}

/**
 * Pull-based batch stream. The batched counterpart of TraceSource:
 * nextBatch() yields consecutive fixed-size spans of the underlying
 * record stream (the last batch may be short), an empty batch at end
 * of stream, and a latched Result error if the underlying source
 * failed.
 */
class BatchSource
{
  public:
    virtual ~BatchSource() = default;

    /**
     * Produce the next batch. The returned span is valid until the
     * next call. Empty batch = end of stream; error = the underlying
     * source failed (latched: every subsequent call returns the same
     * error).
     */
    virtual Result<RecordBatch> nextBatch() = 0;
};

/**
 * Synchronous batcher: groups a TraceSource into fixed-size
 * RecordBatch spans on the calling thread. The building block the
 * hot loops use directly when no pool is available, and the
 * reference behaviour PrefetchReader must reproduce batch-for-batch.
 */
class BatchReader : public BatchSource
{
  public:
    /**
     * @param source Underlying record stream; must outlive the
     *        reader. Read only from within nextBatch().
     * @param batch_size Records per batch; must be positive.
     */
    explicit BatchReader(TraceSource &source,
                         size_t batch_size = kDefaultTraceBatchSize);

    Result<RecordBatch> nextBatch() override;

    /**
     * Clear the latched error / end-of-stream state and resume
     * batching from the source's *current* position. The retry seam
     * for transient I/O failures: the caller rewinds or reopens the
     * source (TraceReader::reopen, VectorTraceSource::rewind), then
     * restarts the batcher instead of being stuck on the latch.
     */
    void restart();

  private:
    TraceSource &source_;
    size_t batch_size_;
    std::vector<TraceRecord> buffer_;
    bool finished_ = false;
    std::optional<Error> error_;
};

/**
 * Zero-copy batcher over records already in memory: nextBatch()
 * returns consecutive subspans of the caller's array, so iteration
 * costs no per-record virtual call and no copy. The batch sequence
 * is exactly BatchReader's over a VectorTraceSource of the same
 * records — what makes it a drop-in for in-memory replays (the
 * kernel-gate workload in bench/perf_pipeline) whose shared ingest
 * cost would otherwise dilute kernel-vs-kernel ratios. The storage
 * must outlive the source and stay unmodified while batching.
 */
class SpanBatchSource : public BatchSource
{
  public:
    /**
     * @param records Borrowed record array (non-decreasing cycles).
     * @param batch_size Records per batch; must be positive.
     */
    explicit SpanBatchSource(std::span<const TraceRecord> records,
                             size_t batch_size =
                                 kDefaultTraceBatchSize)
        : records_(records), batch_size_(batch_size)
    {
        if (batch_size_ == 0)
            fatal("SpanBatchSource: batch size must be positive");
    }

    Result<RecordBatch> nextBatch() override
    {
        RecordBatch batch;
        if (next_ < records_.size()) {
            batch.records = records_.data() + next_;
            batch.count =
                std::min(batch_size_, records_.size() - next_);
            next_ += batch.count;
        }
        return Result<RecordBatch>(batch);
    }

    /** Restart batching from the first record. */
    void rewind() { next_ = 0; }

  private:
    std::span<const TraceRecord> records_;
    size_t batch_size_;
    size_t next_ = 0;
};

/**
 * Double-buffered prefetching batcher: while the consumer simulates
 * the current (front) batch, one pool task fills the back buffer
 * from the source, overlapping trace I/O with simulation. The
 * handoff contract:
 *
 *  - At most one fill is in flight, and fills are issued in stream
 *    order, so the batch sequence is exactly BatchReader's for the
 *    same (source, batch_size) — at every pool size, including 1
 *    (where ThreadPool::submit degrades to inline execution and the
 *    "prefetch" becomes a synchronous read-ahead of one batch).
 *  - nextBatch() blocks until the in-flight fill completes, swaps
 *    the buffers, starts the next fill, and returns the front span;
 *    while blocked the caller drains other pool tasks instead of
 *    idling (it may execute its own fill).
 *  - A source exception raised on the prefetch worker is captured
 *    and re-surfaced on the consumer as a latched Result error.
 *
 * The source must not be touched by anyone else while a
 * PrefetchReader is attached: the reader owns the source's read
 * position, including one batch of read-ahead the consumer has not
 * seen yet.
 */
class PrefetchReader : public BatchSource
{
  public:
    /**
     * Starts the first fill immediately.
     *
     * @param source Underlying record stream; must outlive the
     *        reader.
     * @param pool Pool that runs the fill tasks. Also the pool the
     *        consumer's simulation work should target, so the
     *        waiting consumer can drain it.
     * @param batch_size Records per batch; must be positive.
     */
    PrefetchReader(TraceSource &source, exec::ThreadPool &pool,
                   size_t batch_size = kDefaultTraceBatchSize);

    /** Joins the in-flight fill, if any. */
    ~PrefetchReader() override;

    PrefetchReader(const PrefetchReader &) = delete;
    PrefetchReader &operator=(const PrefetchReader &) = delete;

    Result<RecordBatch> nextBatch() override;

    /**
     * Clear the latched error / end-of-stream state and start a
     * fresh fill from the source's *current* position (the caller
     * rewinds or reopens the source first). Joins any in-flight
     * fill before touching shared state, so it is safe to call right
     * after a failed nextBatch(). Without this, one transient I/O
     * fault latched the reader permanently and a retried job could
     * never re-read its trace.
     */
    void restart();

  private:
    /** Read up to batch_size_ records into back_; called on a pool
     *  worker (or inline). Sets back_exhausted_/back_error_. */
    void fillBack();

    /** Queue the next fillBack() on the pool. */
    void startFill();

    /** Block until the in-flight fill completes, draining pool
     *  tasks while waiting. */
    void waitFill();

    TraceSource &source_;
    exec::ThreadPool &pool_;
    size_t batch_size_;

    /** Consumer-visible batch; swapped with back_ at each handoff. */
    std::vector<TraceRecord> front_;
    /** Fill target. Written only by the in-flight fill task; the
     *  consumer touches it only between waitFill() and the next
     *  startFill() (the completion handshake gives happens-before
     *  in both directions). */
    std::vector<TraceRecord> back_;
    bool back_exhausted_ = false;
    std::optional<Error> back_error_;

    bool finished_ = false;
    std::optional<Error> error_;

    std::mutex mutex_;
    std::condition_variable cv_;
    bool inflight_ = false;
    bool fill_done_ = false;
};

/**
 * Drain `source` to exhaustion through a BatchReader, invoking `fn`
 * once per batch. The convenience entry for analysis loops (bench
 * drivers) that want batched iteration without Result plumbing: a
 * source failure is escalated to fatal(), which is the right
 * severity for the in-memory/synthetic sources those loops use.
 * Replay hot paths with recoverable-error needs drive SimPipeline or
 * a BatchSource directly instead.
 */
void forEachBatch(TraceSource &source,
                  const std::function<void(const RecordBatch &)> &fn,
                  size_t batch_size = kDefaultTraceBatchSize);

} // namespace nanobus

#endif // NANOBUS_TRACE_BATCH_HH
