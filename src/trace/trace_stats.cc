#include "trace/trace_stats.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace nanobus {

void
BusStreamStats::add(uint32_t address)
{
    if (primed_) {
        uint32_t flipped = last_address_ ^ address;
        hamming.add(popcount(flipped));
        while (flipped) {
            unsigned bit = static_cast<unsigned>(
                std::countr_zero(flipped));
            flipped &= flipped - 1;
            ++bit_transitions[bit];
        }
    } else {
        primed_ = true;
    }
    last_address_ = address;
    ++transactions;
}

double
BusStreamStats::bitActivity(unsigned i) const
{
    if (i >= 32)
        panic("BusStreamStats::bitActivity: bit %u out of 32", i);
    if (transactions < 2)
        return 0.0;
    return static_cast<double>(bit_transitions[i]) /
        static_cast<double>(transactions - 1);
}

void
TraceStatistics::consume(TraceSource &source)
{
    TraceRecord record;
    while (source.next(record))
        add(record);
}

void
TraceStatistics::add(const TraceRecord &record)
{
    if (record.cycle > last_cycle_)
        last_cycle_ = record.cycle;
    switch (record.kind) {
      case AccessKind::InstructionFetch:
        instr_.add(record.address);
        break;
      case AccessKind::Load:
        ++loads_;
        data_.add(record.address);
        break;
      case AccessKind::Store:
        ++stores_;
        data_.add(record.address);
        break;
    }
}

double
TraceStatistics::dataIdleFraction() const
{
    if (last_cycle_ == 0)
        return 0.0;
    double total_cycles = static_cast<double>(last_cycle_) + 1.0;
    double busy = static_cast<double>(data_.transactions);
    if (busy >= total_cycles)
        return 0.0;
    return 1.0 - busy / total_cycles;
}

} // namespace nanobus
