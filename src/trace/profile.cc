#include "trace/profile.hh"

#include <map>

#include "util/logging.hh"

namespace nanobus {

void
BenchmarkProfile::validate() const
{
    if (name.empty())
        fatal("BenchmarkProfile: empty name");
    auto in01 = [](double p) { return p >= 0.0 && p <= 1.0; };
    if (!in01(branch_prob) || !in01(call_prob) || !in01(return_prob) ||
        !in01(loop_prob) || !in01(load_prob) || !in01(store_prob) ||
        !in01(stream_switch_prob) || !in01(pointer_chase_prob) ||
        !in01(region_jump_prob) || !in01(stack_access_prob))
        fatal("BenchmarkProfile %s: probability outside [0, 1]",
              name.c_str());
    if (load_prob + store_prob > 1.0)
        fatal("BenchmarkProfile %s: load+store probability %g > 1",
              name.c_str(), load_prob + store_prob);
    if (loop_body_mean < 1.0 || loop_trips_mean < 1.0)
        fatal("BenchmarkProfile %s: loop means must be >= 1",
              name.c_str());
    if (branch_alpha <= 0.0)
        fatal("BenchmarkProfile %s: branch_alpha must be positive",
              name.c_str());
    if (code_footprint < 64 || data_footprint < 64)
        fatal("BenchmarkProfile %s: footprints too small",
              name.c_str());
    if (num_streams == 0 || num_regions == 0)
        fatal("BenchmarkProfile %s: needs >= 1 stream and region",
              name.c_str());
    if (stream_stride == 0 || stream_stride % 4 != 0)
        fatal("BenchmarkProfile %s: stride must be a positive "
              "multiple of 4", name.c_str());
    if (phase_swing < 1.0)
        fatal("BenchmarkProfile %s: phase_swing %g must be >= 1",
              name.c_str(), phase_swing);
    if (phase_mean_cycles < 0.0)
        fatal("BenchmarkProfile %s: negative phase_mean_cycles",
              name.c_str());
}

namespace {

BenchmarkProfile
makeProfile(const char *name, bool fp, double branch, double call,
            double ret, double loop, double body, double trips,
            double load, double store, unsigned streams,
            uint32_t stride, double sw, double chase, double jump,
            uint32_t code_kb, uint32_t data_kb, unsigned regions,
            double stack)
{
    BenchmarkProfile p;
    p.name = name;
    p.stack_access_prob = stack;
    p.floating_point = fp;
    p.branch_prob = branch;
    p.call_prob = call;
    p.return_prob = ret;
    p.loop_prob = loop;
    p.loop_body_mean = body;
    p.loop_trips_mean = trips;
    p.branch_alpha = 1.1;
    p.load_prob = load;
    p.store_prob = store;
    p.num_streams = streams;
    p.stream_stride = stride;
    p.stream_switch_prob = sw;
    p.pointer_chase_prob = chase;
    p.region_jump_prob = jump;
    p.code_footprint = code_kb * 1024;
    p.data_footprint = data_kb * 1024;
    p.num_regions = regions;
    p.validate();
    return p;
}

/**
 * The eight SPEC CPU2000 programs of Sec 5.1. Integer codes branch
 * often and chase pointers; floating-point codes run long unit-stride
 * loops over large arrays with sparse control flow. mcf is the
 * pathological pointer-chaser with a huge working set; swim is the
 * most regular streaming code.
 */
const std::map<std::string, BenchmarkProfile> &
profileTable()
{
    static const std::map<std::string, BenchmarkProfile> table = {
        {"eon", makeProfile("eon", false, 0.14, 0.030, 0.030, 0.55,
                            20, 30, 0.26, 0.13, 4, 8, 0.05, 0.15,
                            0.020, 160, 1024, 4, 0.35)},
        {"crafty", makeProfile("crafty", false, 0.13, 0.020, 0.020,
                               0.50, 24, 40, 0.28, 0.07, 3, 8, 0.04,
                               0.30, 0.030, 128, 2048, 4, 0.30)},
        {"twolf", makeProfile("twolf", false, 0.12, 0.020, 0.020,
                              0.50, 24, 40, 0.25, 0.09, 3, 8, 0.05,
                              0.35, 0.030, 96, 2048, 4, 0.28)},
        {"mcf", makeProfile("mcf", false, 0.19, 0.010, 0.010, 0.60,
                            12, 60, 0.31, 0.09, 2, 4, 0.02, 0.60,
                            0.080, 24, 65536, 8, 0.15)},
        {"applu", makeProfile("applu", true, 0.04, 0.005, 0.005, 0.80,
                              48, 120, 0.29, 0.14, 6, 8, 0.08, 0.03,
                              0.010, 64, 32768, 4, 0.12)},
        {"swim", makeProfile("swim", true, 0.02, 0.002, 0.002, 0.90,
                             64, 200, 0.32, 0.14, 8, 8, 0.10, 0.01,
                             0.005, 16, 16384, 3, 0.12)},
        {"art", makeProfile("art", true, 0.06, 0.005, 0.005, 0.80,
                            32, 150, 0.33, 0.08, 4, 4, 0.06, 0.20,
                            0.020, 16, 4096, 2, 0.12)},
        {"ammp", makeProfile("ammp", true, 0.08, 0.020, 0.020, 0.70,
                             32, 80, 0.30, 0.12, 5, 8, 0.05, 0.25,
                             0.030, 48, 16384, 4, 0.15)},
    };
    return table;
}

} // anonymous namespace

const std::vector<std::string> &
allBenchmarkNames()
{
    static const std::vector<std::string> names = {
        "eon", "crafty", "twolf", "mcf",
        "applu", "swim", "art", "ammp",
    };
    return names;
}

const std::vector<std::string> &
integerBenchmarkNames()
{
    static const std::vector<std::string> names = {
        "eon", "crafty", "twolf", "mcf",
    };
    return names;
}

const std::vector<std::string> &
floatingPointBenchmarkNames()
{
    static const std::vector<std::string> names = {
        "applu", "swim", "art", "ammp",
    };
    return names;
}

const BenchmarkProfile &
benchmarkProfile(const std::string &name)
{
    const auto &table = profileTable();
    auto it = table.find(name);
    if (it == table.end())
        fatal("benchmarkProfile: unknown benchmark '%s'", name.c_str());
    return it->second;
}

} // namespace nanobus
