/**
 * @file
 * Synthetic SPEC-like CPU front end (SHADE substitute).
 *
 * Generates per-cycle instruction-fetch and load/store address
 * streams whose bit-transition structure follows a BenchmarkProfile:
 * sequential fetch runs broken by calls/returns, explicit loop nests
 * (backward branches re-executing a body), Pareto-tailed branch
 * displacements, stride streams over distinct memory regions, and
 * pointer chasing. One instruction issues per cycle (the paper's
 * observation that instruction addresses issue "typically every
 * cycle"); loads/stores issue per the profile's duty cycle.
 */

#ifndef NANOBUS_TRACE_SYNTHETIC_HH
#define NANOBUS_TRACE_SYNTHETIC_HH

#include <optional>
#include <vector>

#include "trace/profile.hh"
#include "trace/record.hh"
#include "util/random.hh"

namespace nanobus {

/** Synthetic CPU trace generator. */
class SyntheticCpu : public TraceSource
{
  public:
    /**
     * @param profile Benchmark behaviour parameters (copied).
     * @param seed RNG seed; same seed + profile => same trace.
     * @param max_cycles Stream length in cycles; 0 = unbounded.
     */
    SyntheticCpu(const BenchmarkProfile &profile, uint64_t seed = 1,
                 uint64_t max_cycles = 0);

    bool next(TraceRecord &out) override;

    /** Advance the generator n cycles, discarding all records. */
    void warmUp(uint64_t cycles);

    /** Cycles generated so far (including warm-up). */
    uint64_t cycle() const { return cycle_; }

    /** The profile driving this generator. */
    const BenchmarkProfile &profile() const { return profile_; }

  private:
    struct Loop
    {
        uint32_t start;      // first body instruction
        uint32_t end;        // address of the backward branch
        uint64_t trips_left;
    };

    struct Stream
    {
        uint32_t region_base;
        uint32_t cursor;     // byte offset within the footprint
    };

    /** Emit the fetch for this cycle and advance all state. */
    void stepCycle(TraceRecord &fetch,
                   std::optional<TraceRecord> &data);

    uint32_t wrapCode(uint64_t addr) const;
    void advancePc();
    uint32_t dataAddress();
    uint32_t stackAddress();
    void updatePhase();

    BenchmarkProfile profile_;
    Rng rng_;
    uint64_t max_cycles_;
    uint64_t cycle_ = 0;

    uint32_t code_base_;
    uint32_t pc_;
    std::vector<uint32_t> call_stack_;
    std::vector<Loop> loop_stack_;

    std::vector<Stream> streams_;
    unsigned active_stream_ = 0;
    unsigned chase_region_ = 0;

    /** Current phase's branchiness scale and remaining length. */
    double phase_scale_ = 1.0;
    uint64_t phase_cycles_left_ = 0;

    std::optional<TraceRecord> pending_data_;
    bool exhausted_ = false;

    static constexpr unsigned max_call_depth = 64;
    static constexpr unsigned max_loop_depth = 4;
};

/**
 * Wraps a trace source and inserts periodic idle windows: after every
 * `active_cycles` cycles of the wrapped stream, `idle_cycles` empty
 * cycles elapse with no bus transmissions (used to reproduce Fig 5).
 * Record cycle numbers are remapped onto the stretched timeline.
 */
class IdleInjector : public TraceSource
{
  public:
    IdleInjector(TraceSource &inner, uint64_t active_cycles,
                 uint64_t idle_cycles);

    bool next(TraceRecord &out) override;

  private:
    TraceSource &inner_;
    uint64_t active_cycles_;
    uint64_t idle_cycles_;
};

} // namespace nanobus

#endif // NANOBUS_TRACE_SYNTHETIC_HH
