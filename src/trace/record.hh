/**
 * @file
 * Address-trace records and sources.
 *
 * The paper drives its models with processor-to-L1 address bus traces
 * (separate instruction and data address buses) collected with
 * SHADE's cachesim5 on SPEC CPU2000 (Sec 5.1). nanobus represents
 * such traces as streams of TraceRecord; sources may be in-memory
 * vectors, files, or the synthetic CPU generator.
 */

#ifndef NANOBUS_TRACE_RECORD_HH
#define NANOBUS_TRACE_RECORD_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nanobus {

/** Kind of a memory access. */
enum class AccessKind : uint8_t {
    InstructionFetch = 0,
    Load = 1,
    Store = 2,
};

/** Readable name of an access kind. */
const char *accessKindName(AccessKind kind);

/** One address-bus transaction. */
struct TraceRecord
{
    /** Cycle the address is driven onto the bus. */
    uint64_t cycle = 0;
    /** 32-bit virtual address (paper: V8plusa, 32-bit VA space). */
    uint32_t address = 0;
    /** Access kind; fetches go to the IA bus, loads/stores to DA. */
    AccessKind kind = AccessKind::InstructionFetch;

    bool operator==(const TraceRecord &) const = default;
};

/**
 * Pull-based trace stream. Records arrive in non-decreasing cycle
 * order; a cycle may carry both a fetch and a data access.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next record.
     * @return false when the stream is exhausted (`out` untouched).
     */
    virtual bool next(TraceRecord &out) = 0;
};

/** Trace source over an in-memory record vector. */
class VectorTraceSource : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<TraceRecord> records);

    bool next(TraceRecord &out) override;

    /** Rewind to the first record. */
    void rewind() { pos_ = 0; }

  private:
    std::vector<TraceRecord> records_;
    size_t pos_ = 0;
};

} // namespace nanobus

#endif // NANOBUS_TRACE_RECORD_HH
