/**
 * @file
 * Deterministic stress-pattern trace sources.
 *
 * Sec 3.3 of the paper reasons about worst-case bus patterns (the
 * ^^v^^ thermal worst case, the v^v^v total-energy worst case); this
 * module generalizes those to reusable trace sources for stress
 * benches and tests, plus the uniform-random traffic that prior
 * encoding studies used (and that the paper criticizes as
 * unrepresentative of real address streams).
 */

#ifndef NANOBUS_TRACE_PATTERNS_HH
#define NANOBUS_TRACE_PATTERNS_HH

#include "trace/record.hh"
#include "util/random.hh"

namespace nanobus {

/** Built-in stress patterns. */
enum class StressPattern {
    /** Word alternates 0101... <-> 1010...: every line toggles
     *  against both neighbors each cycle (total-energy worst case,
     *  v^v^v generalized). */
    AlternatingAll,
    /** Centre line toggles against steady-high neighbors each cycle
     *  (thermal worst case, ^^v^^ held in steady state). */
    CentreToggle,
    /** A single set bit walks across the bus. */
    WalkingOne,
    /** Every cycle a fresh uniform-random word (prior work's
     *  "random traffic"). */
    RandomUniform,
    /** The same word every cycle: zero-activity floor. */
    HoldConstant,
};

/** Readable pattern name. */
const char *stressPatternName(StressPattern pattern);

/** All built-in patterns. */
const std::vector<StressPattern> &allStressPatterns();

/**
 * Emits one `width`-bit pattern word per cycle as a trace of the
 * given access kind.
 */
class PatternTraceSource : public TraceSource
{
  public:
    /**
     * @param pattern Pattern to generate.
     * @param width Bus payload width (<= 32; words are addresses).
     * @param cycles Number of words to emit.
     * @param kind Access kind stamped on the records.
     * @param seed RNG seed (RandomUniform only).
     */
    PatternTraceSource(StressPattern pattern, unsigned width,
                       uint64_t cycles,
                       AccessKind kind = AccessKind::Load,
                       uint64_t seed = 1);

    bool next(TraceRecord &out) override;

    /** The pattern word for a given cycle (exposed for tests). */
    uint32_t wordAt(uint64_t cycle);

  private:
    StressPattern pattern_;
    unsigned width_;
    uint64_t cycles_;
    AccessKind kind_;
    Rng rng_;
    uint64_t cycle_ = 0;
};

} // namespace nanobus

#endif // NANOBUS_TRACE_PATTERNS_HH
