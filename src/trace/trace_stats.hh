/**
 * @file
 * Address-stream characterization.
 *
 * Computes the statistics the paper's analysis leans on (Sec 5.2.1):
 * per-bus transaction counts, consecutive-address Hamming distances
 * (low for instruction streams — the reason bus-invert rarely
 * triggers), per-bit-position transition rates, and data-bus idle
 * fraction.
 */

#ifndef NANOBUS_TRACE_TRACE_STATS_HH
#define NANOBUS_TRACE_TRACE_STATS_HH

#include <array>
#include <cstdint>

#include "trace/record.hh"
#include "util/stats.hh"

namespace nanobus {

/** Per-bus address-stream statistics. */
struct BusStreamStats
{
    /** Transactions observed. */
    uint64_t transactions = 0;
    /** Hamming distance between consecutive addresses. */
    RunningStats hamming;
    /** Transitions seen on each bit position. */
    std::array<uint64_t, 32> bit_transitions{};

    /** Fold in the next address of this stream. */
    void add(uint32_t address);

    /** Mean per-transaction transition count on bit i. */
    double bitActivity(unsigned i) const;

  private:
    uint32_t last_address_ = 0;
    bool primed_ = false;
};

/** Statistics over a full trace (both buses). */
class TraceStatistics
{
  public:
    /** Consume records until the source is exhausted. */
    void consume(TraceSource &source);

    /** Fold in a single record. */
    void add(const TraceRecord &record);

    /** Instruction-address bus stream stats. */
    const BusStreamStats &instruction() const { return instr_; }

    /** Data-address bus stream stats. */
    const BusStreamStats &data() const { return data_; }

    /** Total loads observed. */
    uint64_t loads() const { return loads_; }

    /** Total stores observed. */
    uint64_t stores() const { return stores_; }

    /** Last cycle seen in the trace. */
    uint64_t lastCycle() const { return last_cycle_; }

    /**
     * Fraction of cycles with no data-bus transaction, over the span
     * [0, lastCycle()].
     */
    double dataIdleFraction() const;

  private:
    BusStreamStats instr_;
    BusStreamStats data_;
    uint64_t loads_ = 0;
    uint64_t stores_ = 0;
    uint64_t last_cycle_ = 0;
};

} // namespace nanobus

#endif // NANOBUS_TRACE_TRACE_STATS_HH
