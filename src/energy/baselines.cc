#include "energy/baselines.hh"

#include <algorithm>
#include <bit>

#include "energy/transition.hh"
#include "tech/repeater.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace nanobus {

WholeBusEnergyModel::WholeBusEnergyModel(
    const TechnologyNode &tech, const CapacitanceMatrix &caps,
    const BusEnergyModel::Config &config)
    : width_(caps.size()),
      half_vdd2_(0.5 * (tech.vdd * tech.vdd).raw()),
      word_mask_(lowMask(caps.size())),
      coupling_cap_(caps.size(), caps.size(), 0.0)
{
    if (width_ == 0 || width_ > 64)
        fatal("WholeBusEnergyModel: width %u outside [1, 64]",
              width_);
    if (config.wire_length.raw() <= 0.0)
        fatal("WholeBusEnergyModel: wire length %g must be positive",
              config.wire_length.raw());

    const Meters length = config.wire_length;
    RepeaterModel repeaters(tech, config.include_repeaters);
    const Farads c_rep = repeaters.totalCapacitance(length);
    const unsigned radius =
        std::min<unsigned>(config.coupling_radius, width_ - 1);

    self_cap_.resize(width_);
    for (unsigned i = 0; i < width_; ++i) {
        self_cap_[i] = (caps.ground(i) * length + c_rep).raw();
        for (unsigned j = 0; j < width_; ++j) {
            if (i == j)
                continue;
            unsigned sep = j > i ? j - i : i - j;
            coupling_cap_(i, j) = sep <= radius
                ? (caps.coupling(i, j) * length).raw()
                : 0.0;
        }
    }
}

Joules
WholeBusEnergyModel::transitionEnergy(uint64_t prev,
                                      uint64_t next) const
{
    uint64_t changed = (prev ^ next) & word_mask_;
    if (changed == 0)
        return Joules{};

    double quad = 0.0;
    // Self terms: v_i^2 = 1 on changed lines.
    for (uint64_t bits = changed; bits;) {
        unsigned i = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        quad += self_cap_[i];
    }
    // Pair terms: (v_i - v_j)^2 over i < j. A pair contributes only
    // when at least one member changed.
    for (unsigned i = 0; i < width_; ++i) {
        int vi = bitOf(changed, i)
            ? (bitOf(next, i) ? 1 : -1) : 0;
        const double *row = coupling_cap_.rowPtr(i);
        for (unsigned j = i + 1; j < width_; ++j) {
            int vj = bitOf(changed, j)
                ? (bitOf(next, j) ? 1 : -1) : 0;
            int diff = vi - vj;
            if (diff != 0)
                quad += row[j] * static_cast<double>(diff * diff);
        }
    }
    return Joules{half_vdd2_ * quad};
}

std::vector<double>
WholeBusEnergyModel::uniformSplit(uint64_t prev, uint64_t next) const
{
    double share = transitionEnergy(prev, next).raw() /
        static_cast<double>(width_);
    return std::vector<double>(width_, share);
}

std::vector<double>
worstCaseCurrentPowers(const TechnologyNode &tech, unsigned num_wires)
{
    if (num_wires == 0)
        fatal("worstCaseCurrentPowers: bus must have wires");
    // j_max w t is the wire current; I^2 r_wire composes to W/m.
    const Amps current = tech.j_max * tech.wire_width *
        tech.wire_thickness;
    const WattsPerMeter power = current * current * tech.r_wire;
    return std::vector<double>(num_wires, power.raw());
}

std::vector<double>
averageActivityPowers(const TechnologyNode &tech, unsigned num_wires,
                      double activity, double coupling_multiplier)
{
    if (num_wires == 0)
        fatal("averageActivityPowers: bus must have wires");
    if (activity < 0.0 || coupling_multiplier < 1.0)
        fatal("averageActivityPowers: activity %g / multiplier %g "
              "out of range", activity, coupling_multiplier);
    // Per-metre effective capacitance: line + repeater load, scaled
    // by the whole-bus coupling fudge factor. C V^2 f composes to
    // W/m.
    const FaradsPerMeter c_rep_per_m =
        RepeaterModel::capacitanceRatio() * tech.cIntPerMetre();
    const FaradsPerMeter c_eff =
        (tech.c_line + c_rep_per_m) * coupling_multiplier;
    const WattsPerMeter power = activity * 0.5 *
        (c_eff * (tech.vdd * tech.vdd) * tech.f_clk);
    return std::vector<double>(num_wires, power.raw());
}

} // namespace nanobus
