/**
 * @file
 * Bus line transition taxonomy (Sec 3 of the paper).
 *
 * A line's transition is V_i = V_i^fin - V_i^in in units of Vdd:
 * +1 (rising), -1 (falling), or 0 (steady). A *pair* of lines then
 * exercises its coupling capacitance in one of the paper's classes:
 * charge (00->01, 00->10, 11->01, 11->10), discharge (01->00, 01->11,
 * 10->00, 10->11), toggle (01->10, 10->01; Miller-doubled), or not at
 * all (both steady, or both moving the same way).
 */

#ifndef NANOBUS_ENERGY_TRANSITION_HH
#define NANOBUS_ENERGY_TRANSITION_HH

#include <cstdint>

#include "util/bitops.hh"

namespace nanobus {

/** Per-line transition direction in units of Vdd. */
enum class LineTransition : int {
    Falling = -1,
    Steady = 0,
    Rising = 1,
};

/** Transition of line i between two bus words. */
inline LineTransition
lineTransition(uint64_t prev, uint64_t next, unsigned i)
{
    bool was = bitOf(prev, i);
    bool now = bitOf(next, i);
    if (was == now)
        return LineTransition::Steady;
    return now ? LineTransition::Rising : LineTransition::Falling;
}

/** Signed transition value V_i in units of Vdd: -1, 0, or +1. */
inline int
transitionValue(uint64_t prev, uint64_t next, unsigned i)
{
    return static_cast<int>(lineTransition(prev, next, i));
}

/** Coupling-capacitance event class for a line pair. */
enum class PairKind {
    /** Neither terminal moved. */
    Idle,
    /** Both terminals moved the same way; no voltage change across. */
    SameDirection,
    /** Capacitance charged: one terminal moved, sum V_i+V_j = +Vdd. */
    Charge,
    /** Capacitance discharged: one terminal moved, sum = -Vdd. */
    Discharge,
    /** Terminals moved oppositely; Miller-doubled toggle. */
    Toggle,
};

/**
 * Classify the coupling event for a pair with transitions vi, vj
 * (each -1, 0, or +1).
 */
inline PairKind
classifyPair(int vi, int vj)
{
    if (vi == 0 && vj == 0)
        return PairKind::Idle;
    if (vi == vj)
        return PairKind::SameDirection;
    if (vi == -vj)
        return PairKind::Toggle;
    // Exactly one of them moved.
    return (vi + vj) > 0 ? PairKind::Charge : PairKind::Discharge;
}

/**
 * Normalized coupling energy factor for line i against line j:
 * (V_i^2 - V_i V_j) in units of Vdd^2 (Sec 3.2). Zero whenever line i
 * itself is steady — coupling energy is dissipated only in lines that
 * transition.
 */
inline int
couplingFactor(int vi, int vj)
{
    return vi * vi - vi * vj;
}

/** Number of lines that transition between two words. */
inline unsigned
selfTransitionCount(uint64_t prev, uint64_t next, unsigned width)
{
    return hammingDistance(prev, next, width);
}

} // namespace nanobus

#endif // NANOBUS_ENERGY_TRANSITION_HH
