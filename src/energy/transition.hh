/**
 * @file
 * Bus line transition taxonomy (Sec 3 of the paper).
 *
 * A line's transition is V_i = V_i^fin - V_i^in in units of Vdd:
 * +1 (rising), -1 (falling), or 0 (steady). A *pair* of lines then
 * exercises its coupling capacitance in one of the paper's classes:
 * charge (00->01, 00->10, 11->01, 11->10), discharge (01->00, 01->11,
 * 10->00, 10->11), toggle (01->10, 10->01; Miller-doubled), or not at
 * all (both steady, or both moving the same way).
 */

#ifndef NANOBUS_ENERGY_TRANSITION_HH
#define NANOBUS_ENERGY_TRANSITION_HH

#include <cstdint>

#include "util/bitops.hh"

namespace nanobus {

/** Per-line transition direction in units of Vdd. */
enum class LineTransition : int {
    Falling = -1,
    Steady = 0,
    Rising = 1,
};

/** Transition of line i between two bus words. */
inline LineTransition
lineTransition(uint64_t prev, uint64_t next, unsigned i)
{
    bool was = bitOf(prev, i);
    bool now = bitOf(next, i);
    if (was == now)
        return LineTransition::Steady;
    return now ? LineTransition::Rising : LineTransition::Falling;
}

/** Signed transition value V_i in units of Vdd: -1, 0, or +1. */
inline int
transitionValue(uint64_t prev, uint64_t next, unsigned i)
{
    return static_cast<int>(lineTransition(prev, next, i));
}

/** Coupling-capacitance event class for a line pair. */
enum class PairKind {
    /** Neither terminal moved. */
    Idle,
    /** Both terminals moved the same way; no voltage change across. */
    SameDirection,
    /** Capacitance charged: one terminal moved, sum V_i+V_j = +Vdd. */
    Charge,
    /** Capacitance discharged: one terminal moved, sum = -Vdd. */
    Discharge,
    /** Terminals moved oppositely; Miller-doubled toggle. */
    Toggle,
};

/**
 * Classify the coupling event for a pair with transitions vi, vj
 * (each -1, 0, or +1).
 */
inline PairKind
classifyPair(int vi, int vj)
{
    if (vi == 0 && vj == 0)
        return PairKind::Idle;
    if (vi == vj)
        return PairKind::SameDirection;
    if (vi == -vj)
        return PairKind::Toggle;
    // Exactly one of them moved.
    return (vi + vj) > 0 ? PairKind::Charge : PairKind::Discharge;
}

/**
 * Normalized coupling energy factor for line i against line j:
 * (V_i^2 - V_i V_j) in units of Vdd^2 (Sec 3.2). Zero whenever line i
 * itself is steady — coupling energy is dissipated only in lines that
 * transition.
 */
inline int
couplingFactor(int vi, int vj)
{
    return vi * vi - vi * vj;
}

/** Number of lines that transition between two words. */
inline unsigned
selfTransitionCount(uint64_t prev, uint64_t next, unsigned width)
{
    return hammingDistance(prev, next, width);
}

// ---------------------------------------------------------------- //
// Word-parallel (bit-packed) form of the same taxonomy.
//
// The packed kernel (energy/packed.cc) transposes a block of up to 64
// consecutive bus words into *line lanes*: lane s_i is a u64 whose
// bit k holds line i's value at cycle k of the block. All the
// per-pair classes above then become single bitwise expressions over
// whole lanes, evaluated for 64 cycles at once. The helpers below are
// the lane-level primitives; each documents which PairKind rows of
// classifyPair() it selects.

/** Which kernel evaluates transition counts and energies. */
enum class TransitionKernel {
    /** Per-word FP evaluation (transitionEnergy); the oracle path. */
    Scalar,
    /** Bit-packed u64-lane integer-count kernel (energy/packed.cc). */
    Packed,
};

/** Stable lowercase name for bench output and snapshot guards. */
inline const char *
transitionKernelName(TransitionKernel kernel)
{
    return kernel == TransitionKernel::Packed ? "packed" : "scalar";
}

/**
 * Transition lane for one line: bit k set iff the line changed at
 * cycle k. `value_lane` is the line's packed values, `prev_bit` the
 * value before cycle 0 (in bit 0), `cycle_mask` the valid-cycle mask
 * (lowMask(m) for a block of m <= 64 cycles).
 */
inline constexpr uint64_t
transitionLane(uint64_t value_lane, uint64_t prev_bit,
               uint64_t cycle_mask)
{
    return (value_lane ^ ((value_lane << 1) | (prev_bit & 1ull))) &
        cycle_mask;
}

/** Cycles where lines i and j moved oppositely (PairKind::Toggle). */
inline constexpr uint64_t
toggleLane(uint64_t ti, uint64_t tj, uint64_t si, uint64_t sj)
{
    return (ti & tj) & (si ^ sj);
}

/** Cycles where both moved the same way (PairKind::SameDirection). */
inline constexpr uint64_t
sameDirectionLane(uint64_t ti, uint64_t tj, uint64_t si, uint64_t sj)
{
    return (ti & tj) & ~(si ^ sj);
}

/**
 * Cycles where line i moved and line j held steady — the union of
 * PairKind::Charge and PairKind::Discharge as seen from line i.
 */
inline constexpr uint64_t
chargeDischargeLane(uint64_t ti, uint64_t tj)
{
    return ti & ~tj;
}

/**
 * Signed deviation of the pair's coupling-factor sum from line i's
 * self count over a block:
 *
 *   sum_k couplingFactor(vi_k, vj_k) = popcount(t_i) + deviation
 *
 * because couplingFactor is 1 per Charge/Discharge cycle (same as the
 * self count's contribution), 2 per Toggle (+1 deviation), and 0 per
 * SameDirection (-1 deviation). Exact in int64 for any block split,
 * which is what makes packed accumulation order-free.
 */
inline constexpr int64_t
pairDeviation(uint64_t ti, uint64_t tj, uint64_t si, uint64_t sj)
{
    uint64_t both = ti & tj;
    return 2 * static_cast<int64_t>(popcount(both & (si ^ sj))) -
        static_cast<int64_t>(popcount(both));
}

} // namespace nanobus

#endif // NANOBUS_ENERGY_TRANSITION_HH
