/**
 * @file
 * Prior-work baseline models the paper argues against (Secs 1-2).
 *
 * - WholeBusEnergyModel: the Sotiriadis & Chandrakasan style model
 *   ([16, 17] in the paper) that "only estimate[s] bus energy
 *   dissipation considering the bus as a whole, not in each bus
 *   line". Its total is exact — summing the paper's per-line
 *   energies reproduces it identically (a theorem our tests check) —
 *   but it cannot attribute energy to wires, so thermal analysis on
 *   top of it must assume a uniform split.
 *
 * - WorstCaseCurrentModel: the supply-line style analysis ([5, 6])
 *   that assumes every wire carries its maximum RMS current density
 *   j_max continuously. For signal lines this wildly overestimates
 *   sustained power and hence temperature and EM stress, which is
 *   the paper's motivation for trace-driven simulation.
 *
 * - averageActivityPowers: the average-switching-factor approach
 *   ([8]) — one activity number for the whole bus, no per-line or
 *   temporal structure.
 */

#ifndef NANOBUS_ENERGY_BASELINES_HH
#define NANOBUS_ENERGY_BASELINES_HH

#include <cstdint>
#include <vector>

#include "energy/bus_energy.hh"
#include "extraction/capmatrix.hh"
#include "tech/technology.hh"

namespace nanobus {

/**
 * Whole-bus (total-only) transition energy model.
 *
 * E = 0.5 Vdd^2 [ sum_i C_self,i v_i^2 + sum_{i<j} c_ij (v_i-v_j)^2 ]
 *
 * with v in units of Vdd — the aggregate quadratic form over the
 * capacitance matrix.
 */
class WholeBusEnergyModel
{
  public:
    /** Same configuration semantics as BusEnergyModel. */
    WholeBusEnergyModel(const TechnologyNode &tech,
                        const CapacitanceMatrix &caps,
                        const BusEnergyModel::Config &config);

    /** Bus width in lines. */
    unsigned width() const { return width_; }

    /** Total bus energy of the transition prev -> next. */
    Joules transitionEnergy(uint64_t prev, uint64_t next) const;

    /**
     * Per-line energies under the uniform-split assumption a
     * whole-bus model forces on a downstream thermal analysis:
     * every line gets E_total / N.
     */
    std::vector<double> uniformSplit(uint64_t prev,
                                     uint64_t next) const;

  private:
    unsigned width_;
    double half_vdd2_;
    uint64_t word_mask_;
    std::vector<double> self_cap_; // full length [F]
    Matrix coupling_cap_;          // full length [F]
};

/**
 * Per-wire power under the worst-case assumption that every wire
 * carries RMS current density j_max continuously:
 * P/m = (j_max w t)^2 r_wire [W/m], identical for every wire.
 */
std::vector<double> worstCaseCurrentPowers(const TechnologyNode &tech,
                                           unsigned num_wires);

/**
 * Per-wire power under a single average switching-activity factor
 * (transitions per wire per cycle), uniform across wires:
 * P/m = activity * 0.5 (C_self/m) Vdd^2 f_clk, coupling folded in
 * via an effective capacitance multiplier.
 *
 * @param activity Average transitions per wire per cycle.
 * @param coupling_multiplier Effective (C_self + coupling)/C_self
 *        ratio; 1.0 ignores coupling as the earliest models did.
 */
std::vector<double> averageActivityPowers(const TechnologyNode &tech,
                                          unsigned num_wires,
                                          double activity,
                                          double coupling_multiplier);

} // namespace nanobus

#endif // NANOBUS_ENERGY_BASELINES_HH
