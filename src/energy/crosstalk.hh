/**
 * @file
 * Crosstalk-dependent (dynamic) delay model.
 *
 * The same Miller effect that doubles coupling *energy* on opposing
 * transitions (Sec 3.2) also modulates *delay*: a line switching
 * against opposing neighbors must charge up to
 * c_line + 4 c_inter per unit length, while one switching alongside
 * its neighbors sees only c_line. The paper's introduction lists
 * crosstalk-driven delay as a core concern for global buses and
 * low-K scaling; this module quantifies it with the standard
 * effective-capacitance ("delay class") formulation:
 *
 *   c_eff(i) = c_line + sum_adjacent g(v_i, v_j) c_inter,
 *   g = 0 (same direction), 1 (steady neighbor), 2 (opposite).
 *
 * The per-line delay then follows the Bakoglu repeated-segment form
 * with c_eff in place of the nominal C_int, and the bus settles when
 * its slowest switching line settles.
 */

#ifndef NANOBUS_ENERGY_CROSSTALK_HH
#define NANOBUS_ENERGY_CROSSTALK_HH

#include <cstdint>
#include <vector>

#include "tech/technology.hh"
#include "util/units.hh"

namespace nanobus {

/** Crosstalk delay analysis for one technology node. */
class CrosstalkDelayModel
{
  public:
    /** @param tech Technology node (wire RC + repeater device). */
    explicit CrosstalkDelayModel(const TechnologyNode &tech);

    /**
     * Effective per-unit-length capacitance of line i for the
     * transition prev -> next on a `width`-bit bus. Steady lines
     * report their quiescent load (c_line + adjacent c_inter terms
     * with g = 1).
     */
    FaradsPerMeter effectiveCapacitance(uint64_t prev, uint64_t next,
                                        unsigned line,
                                        unsigned width) const;

    /**
     * Miller coupling-factor sum over adjacent neighbors of line i
     * (0..4): the line's "delay class" in the crosstalk literature.
     */
    unsigned delayClass(uint64_t prev, uint64_t next, unsigned line,
                        unsigned width) const;

    /**
     * Delay of switching line i under the given transition, for a
     * repeated line of the given length.
     */
    Seconds lineDelay(uint64_t prev, uint64_t next, unsigned line,
                      unsigned width, Meters length) const;

    /**
     * Bus settling delay: the slowest switching line's delay;
     * 0 if no line switches.
     */
    Seconds busDelay(uint64_t prev, uint64_t next, unsigned width,
                     Meters length) const;

    /** Delay for a given c_eff on a repeated line. */
    Seconds delayForCapacitance(FaradsPerMeter c_eff_per_m,
                                Meters length) const;

    /** Best case: neighbors switch along with the line (g = 0). */
    Seconds bestCaseDelay(Meters length) const;

    /** Nominal: neighbors steady (g = 1 each side). */
    Seconds nominalDelay(Meters length) const;

    /** Worst case: both neighbors oppose (g = 2 each side). */
    Seconds worstCaseDelay(Meters length) const;

  private:
    const TechnologyNode &tech_;
};

} // namespace nanobus

#endif // NANOBUS_ENERGY_CROSSTALK_HH
