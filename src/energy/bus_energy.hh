/**
 * @file
 * Per-line bus energy dissipation model (Sec 3 of the paper).
 *
 * For each bus word transition the model computes the energy
 * dissipated in every individual line — the paper's key departure
 * from whole-bus models like Sotiriadis & Chandrakasan:
 *
 *   E_i = 0.5 (c_line_i L + C_rep) Vdd^2            if line i moves
 *       + sum_j 0.5 c_ij L (V_i^2 - V_i V_j) Vdd^2  over neighbors j
 *
 * with V in units of Vdd. The coupling sum ranges over a configurable
 * neighbor radius: 0 reproduces self-only models, 1 the
 * nearest-neighbor models of prior work ("NN" in Fig 3), and
 * width-1 the paper's full model ("All").
 */

#ifndef NANOBUS_ENERGY_BUS_ENERGY_HH
#define NANOBUS_ENERGY_BUS_ENERGY_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "energy/transition.hh"
#include "extraction/capmatrix.hh"
#include "tech/technology.hh"
#include "util/result.hh"
#include "util/units.hh"

namespace nanobus {

class PackedTransitionCounts;

/** Self/coupling split of an energy quantity. */
struct EnergyBreakdown
{
    /** Energy in line self capacitance (incl. repeater load). */
    Joules self;
    /** Energy in inter-wire coupling capacitance. */
    Joules coupling;

    /** Combined energy. */
    Joules total() const { return self + coupling; }

    EnergyBreakdown &operator+=(const EnergyBreakdown &o)
    {
        self += o.self;
        coupling += o.coupling;
        return *this;
    }
};

/**
 * Stateful per-line energy model for one bus.
 */
class BusEnergyModel
{
  public:
    /** Model configuration. */
    struct Config
    {
        /** Physical wire length; the paper targets global buses. */
        Meters wire_length{0.010};
        /**
         * Coupling neighbor radius: 0 = self energy only, 1 = nearest
         * neighbor, >= width-1 = all pairs. Values are clamped to
         * width-1.
         */
        unsigned coupling_radius = 64;
        /** Model repeater capacitance on each line (Sec 3.1.1). */
        bool include_repeaters = true;
        /** Initial word held on the bus. */
        uint64_t initial_word = 0;
        /**
         * Transition kernel. Scalar evaluates FP energies word by
         * word (the oracle path); Packed accumulates exact integer
         * transition counts over bit-packed 64-cycle blocks
         * (energy/packed.hh) and derives energies from the counts at
         * observation points. Packed results are bit-identical under
         * any batching of the same word sequence, but not bitwise
         * comparable to Scalar (different FP summation order; they
         * agree to rounding — see docs/PIPELINE.md).
         */
        TransitionKernel kernel = TransitionKernel::Scalar;
    };

    /**
     * @param tech Technology node (supplies Vdd and repeater load).
     * @param caps Per-unit-length capacitance structure; its size
     *             fixes the bus width (<= 64).
     * @param config Model configuration.
     */
    BusEnergyModel(const TechnologyNode &tech,
                   const CapacitanceMatrix &caps);
    BusEnergyModel(const TechnologyNode &tech,
                   const CapacitanceMatrix &caps,
                   const Config &config);
    ~BusEnergyModel();

    /** Bus width in lines. */
    unsigned width() const { return width_; }

    /** Kernel this model evaluates transitions with. */
    TransitionKernel kernel() const { return kernel_; }

    /** Effective coupling radius after clamping. */
    unsigned couplingRadius() const { return radius_; }

    /** Word currently held on the bus. */
    uint64_t lastWord() const { return last_word_; }

    /** Total self capacitance (line + repeaters) of line i. */
    Farads selfCapacitance(unsigned i) const;

    /** Coupling capacitance between lines i and j over the length. */
    Farads couplingCapacitance(unsigned i, unsigned j) const;

    /**
     * Energies dissipated in each line by the transition prev->next,
     * without touching model state. Returns a reference to an
     * internal buffer valid until the next call.
     */
    const std::vector<double> &transitionEnergy(uint64_t prev,
                                                uint64_t next);

    /** Self/coupling breakdown of the last transitionEnergy() call. */
    const EnergyBreakdown &lastBreakdown() const { return last_; }

    /**
     * Per-line energies [J] of the last transitionEnergy()/step()
     * call (same buffer transitionEnergy returns).
     */
    const std::vector<double> &lastLineEnergy() const
    {
        return line_energy_;
    }

    /**
     * Clock in the next word: computes the transition energy from the
     * held word, accumulates per-line and breakdown totals, and
     * latches `next`. Returns the total energy of this transition.
     */
    Joules step(uint64_t next);

    /**
     * Clock in a run of words — equivalent to one step() per word —
     * while also accumulating each transition's per-line energies
     * into the caller's SoA scratch `interval_line_acc` (size ==
     * width()) and its breakdown into `interval_acc`.
     *
     * This is the batched hot path: the caller's interval
     * bookkeeping moves out of the per-word loop into this one tight
     * pass, and every accumulator receives the exact per-word
     * addition sequence of the per-record path, so the results are
     * bit-identical (pinned by tests/sim/test_pipeline_batch.cc).
     * After the call, lastBreakdown()/lastLineEnergy() describe the
     * final transition of the run.
     *
     * Under the Packed kernel the caller's interval accumulators are
     * deliberately NOT touched: interval energies are derived from
     * the count state instead — call beginInterval() at each
     * interval start and intervalEnergy() at each close
     * (fabric/bus_sim.cc does). Whole-run accumulators and the final
     * transition's lastBreakdown()/lastLineEnergy() keep their
     * documented meaning in both kernels.
     */
    void stepBatch(std::span<const uint64_t> words,
                   std::span<double> interval_line_acc,
                   EnergyBreakdown &interval_acc);

    /** Cycles step()ed since the last reset. */
    uint64_t cycles() const { return cycles_; }

    /** Accumulated per-line energies [J] since the last reset. */
    const std::vector<double> &accumulatedLineEnergy() const
    {
        return acc_line_;
    }

    /** Accumulated bus-total breakdown since the last reset. */
    const EnergyBreakdown &accumulatedBreakdown() const { return acc_; }

    /** Accumulated bus-total energy. */
    Joules accumulatedTotal() const { return acc_.total(); }

    /** Clear accumulators (keeps the held word). */
    void resetAccumulation();

    /**
     * Restore the full mutable state (held word + accumulators)
     * captured from an identically configured model, for
     * checkpoint/resume (sim/snapshot.hh). Further step() calls are
     * bit-identical to a model that never stopped. InvalidArgument
     * when `acc_line` does not match the bus width.
     */
    [[nodiscard]] Status restoreAccumulation(
        uint64_t last_word, const std::vector<double> &acc_line,
        const EnergyBreakdown &acc, uint64_t cycles);

    /**
     * Packed kernel only: latch the current count state as the open
     * interval's baseline. Subsequent intervalEnergy() calls report
     * energies accumulated since this point. No-op under Scalar
     * (scalar interval accounting lives in the stepBatch spans).
     */
    void beginInterval();

    /**
     * Packed kernel only (panics under Scalar): derive the open
     * interval's per-line energies [J] into `line_out` (size ==
     * width()) and its breakdown into `out`, from the count deltas
     * since the last beginInterval().
     */
    void intervalEnergy(std::span<double> line_out,
                        EnergyBreakdown &out) const;

    /**
     * Full mutable state of the Packed kernel, for checkpoint/resume
     * (fabric/bus_snapshot.cc). Energies are deliberately absent:
     * they are derived from the counts on restore, which is what
     * keeps resumed runs bit-identical.
     */
    struct PackedState
    {
        uint64_t last_word = 0;
        /** Word held before the final recorded transition (feeds
         *  lastBreakdown()/lastLineEnergy() re-derivation). */
        uint64_t final_prev_word = 0;
        uint64_t cycles = 0;
        std::vector<uint64_t> self;
        std::vector<int64_t> pairs;
        std::vector<uint64_t> interval_self;
        std::vector<int64_t> interval_pairs;
    };

    /** Packed kernel only (panics under Scalar). */
    PackedState capturePackedState() const;

    /**
     * Packed-kernel counterpart of restoreAccumulation():
     * InvalidArgument when the payload shape does not match this
     * model (or when the model is Scalar).
     */
    [[nodiscard]] Status restorePackedState(const PackedState &state);

    /** Pair-deviation slots per line in the packed count state. */
    unsigned packedPairStride() const;

  private:
    void deriveEnergies(const uint64_t *self_base,
                        const int64_t *pair_base,
                        std::span<double> line_out,
                        EnergyBreakdown &out) const;
    void deriveAccumulators();
    unsigned width_;
    unsigned radius_;
    double half_vdd2_;         // 0.5 * Vdd^2
    uint64_t last_word_;
    uint64_t word_mask_;

    std::vector<double> self_cap_;     // per line, full length [F]
    Matrix coupling_cap_;              // per pair, full length [F]

    std::vector<double> line_energy_;  // scratch, per line [J]
    EnergyBreakdown last_;

    std::vector<double> acc_line_;
    EnergyBreakdown acc_;
    uint64_t cycles_ = 0;

    // Packed-kernel state (null / empty under Scalar).
    TransitionKernel kernel_ = TransitionKernel::Scalar;
    std::unique_ptr<PackedTransitionCounts> counts_;
    /** Count snapshot at the open interval's start. */
    std::vector<uint64_t> interval_self_base_;
    std::vector<int64_t> interval_pair_base_;
    /** Word held before the last recorded transition. */
    uint64_t final_prev_word_ = 0;
};

} // namespace nanobus

#endif // NANOBUS_ENERGY_BUS_ENERGY_HH
