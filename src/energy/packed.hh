/**
 * @file
 * Bit-packed transition counting for the batched energy path.
 *
 * The paper's energy model (Sec 3) is a pure function of per-line
 * self-transition counts and per-pair coupling-event counts. The
 * packed kernel exploits that: instead of evaluating FP energies word
 * by word, it accumulates *exact integer* counts over 64-cycle blocks
 * of bus words — self counts as popcounts of transition lanes, pair
 * deviations from the lane classification in energy/transition.hh —
 * and derives energies from the counts only at observation points
 * (interval close, accessors, snapshots). Integer accumulation is
 * associative, so the counts — and every energy derived from them —
 * are bit-identical under any batch/block/pool split
 * (docs/PIPELINE.md, "Scalar/packed equivalence contract").
 */

#ifndef NANOBUS_ENERGY_PACKED_HH
#define NANOBUS_ENERGY_PACKED_HH

#include <cstdint>
#include <span>
#include <vector>

#include "util/result.hh"

namespace nanobus {

/**
 * Exact transition counts for one bus, accumulated from packed
 * 64-cycle blocks.
 *
 * For each line i, `selfCount(i)` is the number of cycles where the
 * line transitioned. For each pair (i, j) within the stored radius,
 * `pairDeviationAt(i, j)` is the signed deviation of the pair's
 * coupling-factor sum from the self count (see pairDeviation() in
 * energy/transition.hh): the per-pair coupling-event count is then
 * `selfCount(i) + pairDeviationAt(i, j)`.
 */
class PackedTransitionCounts
{
  public:
    /**
     * @param width Bus width in lines, [1, 64].
     * @param radius Neighbor radius whose pair deviations are
     *               stored; clamped to width - 1.
     * @param initial_word Word held on the bus before cycle 0.
     */
    PackedTransitionCounts(unsigned width, unsigned radius,
                           uint64_t initial_word);

    unsigned width() const { return width_; }

    /** Radius after clamping; pairs farther apart count as zero. */
    unsigned storedRadius() const { return stored_radius_; }

    /** Word held on the bus after the last processed cycle. */
    uint64_t prevWord() const { return prev_word_; }

    /**
     * Accumulate the counts for a run of bus words (one per cycle),
     * transitioning from the held word into words[0] and onward.
     * Words are masked to the bus width internally; the held word
     * becomes words.back() & mask.
     */
    void process(std::span<const uint64_t> words);

    /** Self-transition count of line i since the last reset. */
    uint64_t selfCount(unsigned i) const { return self_[i]; }

    /**
     * Signed pair deviation for lines i and j (symmetric; zero when
     * |i - j| exceeds the stored radius or i == j).
     */
    int64_t pairDeviationAt(unsigned i, unsigned j) const
    {
        const unsigned lo = i < j ? i : j;
        const unsigned d = i < j ? j - i : i - j;
        if (d == 0 || d > stored_radius_)
            return 0;
        return pair_[static_cast<size_t>(lo) * stored_radius_ +
                     (d - 1)];
    }

    /** Raw self counts, one per line (snapshot payload). */
    std::span<const uint64_t> selfCounts() const { return self_; }

    /**
     * Raw pair deviations, row-major: entry [i * storedRadius() +
     * (d - 1)] is the deviation for the pair (i, i + d). Rows near
     * the top of the bus have trailing always-zero slots (snapshot
     * payload keeps them for a fixed layout).
     */
    std::span<const int64_t> pairDeviations() const { return pair_; }

    /** Zero all counts and latch `word` as the held word. */
    void reset(uint64_t word);

    /** Zero all counts, keeping the held word. */
    void resetCounts();

    /**
     * Restore counts captured from an identically shaped counter.
     * InvalidArgument when the payload sizes do not match.
     */
    [[nodiscard]] Status restore(uint64_t prev_word,
                                 std::span<const uint64_t> self,
                                 std::span<const int64_t> pairs);

  private:
    unsigned width_;
    unsigned stored_radius_;
    uint64_t word_mask_;
    uint64_t prev_word_;
    std::vector<uint64_t> self_;
    std::vector<int64_t> pair_;
};

} // namespace nanobus

#endif // NANOBUS_ENERGY_PACKED_HH
