#include "energy/crosstalk.hh"

#include <algorithm>
#include <cmath>

#include "energy/transition.hh"
#include "tech/repeater.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace nanobus {

namespace {

/**
 * Miller factor g for a victim moving v_i with a neighbor moving
 * v_j: 0 when they move together, 1 when the neighbor is steady,
 * 2 when they oppose. For a steady victim the neighbor's motion
 * still (dis)charges the coupling capacitance through the victim's
 * driver; the quiescent loading convention uses g = 1.
 */
unsigned
millerFactor(int vi, int vj)
{
    if (vi == 0)
        return 1;
    if (vj == 0)
        return 1;
    return vi == vj ? 0 : 2;
}

} // anonymous namespace

CrosstalkDelayModel::CrosstalkDelayModel(const TechnologyNode &tech)
    : tech_(tech)
{
}

unsigned
CrosstalkDelayModel::delayClass(uint64_t prev, uint64_t next,
                                unsigned line, unsigned width) const
{
    if (line >= width)
        fatal("CrosstalkDelayModel: line %u out of %u", line, width);
    int vi = transitionValue(prev, next, line);
    unsigned cls = 0;
    if (line > 0)
        cls += millerFactor(vi, transitionValue(prev, next,
                                                line - 1));
    if (line + 1 < width)
        cls += millerFactor(vi, transitionValue(prev, next,
                                                line + 1));
    return cls;
}

FaradsPerMeter
CrosstalkDelayModel::effectiveCapacitance(uint64_t prev,
                                          uint64_t next,
                                          unsigned line,
                                          unsigned width) const
{
    return tech_.c_line +
        static_cast<double>(delayClass(prev, next, line, width)) *
        tech_.c_inter;
}

Seconds
CrosstalkDelayModel::delayForCapacitance(FaradsPerMeter c_eff_per_m,
                                         Meters length) const
{
    if (length.raw() <= 0.0)
        fatal("CrosstalkDelayModel: length %g must be positive",
              length.raw());
    // Repeater design is fixed at the *nominal* load (hardware can't
    // re-tune per pattern); only the wire load varies per pattern.
    RepeaterDesign design = RepeaterModel(tech_).design(length);
    const double k = design.count_k_exact;
    const double h = design.size_h;

    // Every RC product below composes to seconds by construction.
    const Meters seg_len = length / k;
    const Ohms r_seg = tech_.r_wire * seg_len;
    const Farads c_seg = c_eff_per_m * seg_len;
    const Ohms r_drv = tech_.r0 / h;
    const Farads c_gate = tech_.c0 * h;

    const Seconds seg_delay = 0.7 * (r_drv * (c_seg + c_gate)) +
        r_seg * (0.4 * c_seg + 0.7 * c_gate);
    return k * seg_delay;
}

Seconds
CrosstalkDelayModel::lineDelay(uint64_t prev, uint64_t next,
                               unsigned line, unsigned width,
                               Meters length) const
{
    return delayForCapacitance(
        effectiveCapacitance(prev, next, line, width), length);
}

Seconds
CrosstalkDelayModel::busDelay(uint64_t prev, uint64_t next,
                              unsigned width, Meters length) const
{
    uint64_t changed = (prev ^ next) & lowMask(width);
    Seconds worst;
    for (uint64_t bits = changed; bits;) {
        unsigned line = static_cast<unsigned>(
            std::countr_zero(bits));
        bits &= bits - 1;
        worst = std::max(worst, lineDelay(prev, next, line, width,
                                          length));
    }
    return worst;
}

Seconds
CrosstalkDelayModel::bestCaseDelay(Meters length) const
{
    return delayForCapacitance(tech_.c_line, length);
}

Seconds
CrosstalkDelayModel::nominalDelay(Meters length) const
{
    return delayForCapacitance(tech_.c_line + 2.0 * tech_.c_inter,
                               length);
}

Seconds
CrosstalkDelayModel::worstCaseDelay(Meters length) const
{
    return delayForCapacitance(tech_.c_line + 4.0 * tech_.c_inter,
                               length);
}

} // namespace nanobus
