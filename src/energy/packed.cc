#include "energy/packed.hh"

#include <algorithm>

#include "energy/transition.hh"
#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace nanobus {

PackedTransitionCounts::PackedTransitionCounts(unsigned width,
                                               unsigned radius,
                                               uint64_t initial_word)
    : width_(width),
      stored_radius_(std::min(radius, width > 0 ? width - 1 : 0u)),
      word_mask_(lowMask(width)),
      prev_word_(initial_word & word_mask_)
{
    if (width_ == 0 || width_ > 64)
        fatal("PackedTransitionCounts: width %u outside [1, 64]",
              width_);
    self_.assign(width_, 0);
    pair_.assign(static_cast<size_t>(width_) * stored_radius_, 0);
}

void
PackedTransitionCounts::process(std::span<const uint64_t> words)
{
    const size_t n = words.size();
    size_t base = 0;
    // Lane scratch: `lanes` holds the block first as masked words
    // (one per cycle) and, after the transpose, as line lanes (bit k
    // = the line's value at cycle k). Words are masked *before* the
    // transpose so bits at or above the bus width can never reach a
    // lane — the stale-tail defense pinned by
    // tests/energy/test_packed_kernel.cc.
    uint64_t lanes[64];
    uint64_t carry[64];
    uint64_t trans[64];
    while (base < n) {
        const size_t m = std::min<size_t>(64, n - base);
        simd::maskInto(lanes, words.data() + base, word_mask_, m);
        std::fill(lanes + m, lanes + 64, 0ull);
        const uint64_t next_prev = lanes[m - 1];
        transposeBits64(lanes);

        for (unsigned i = 0; i < width_; ++i)
            carry[i] = (prev_word_ >> i) & 1ull;
        const uint64_t cycle_mask =
            lowMask(static_cast<unsigned>(m));
        simd::transitionLanes(trans, lanes, carry, cycle_mask,
                              width_);
        simd::accumulatePopcounts(self_.data(), trans, width_);

        // Pair deviations: only cycles where *both* lines moved
        // contribute (+1 toggle, -1 same-direction), so lines that
        // held all block — the common case on real traces — drop
        // out entirely. Compacting the active lines first makes the
        // pair scan quadratic in the *toggling* line count, not the
        // bus width.
        unsigned active[64];
        unsigned n_active = 0;
        for (unsigned i = 0; i < width_; ++i)
            if (trans[i] != 0)
                active[n_active++] = i;
        for (unsigned a = 0; a + 1 < n_active; ++a) {
            const unsigned i = active[a];
            const uint64_t ti = trans[i];
            int64_t *row = pair_.data() +
                static_cast<size_t>(i) * stored_radius_;
            for (unsigned b = a + 1;
                 b < n_active && active[b] - i <= stored_radius_;
                 ++b) {
                const unsigned j = active[b];
                const uint64_t tj = trans[j];
                if ((ti & tj) == 0)
                    continue;
                row[j - i - 1] +=
                    pairDeviation(ti, tj, lanes[i], lanes[j]);
            }
        }

        prev_word_ = next_prev;
        base += m;
    }
}

void
PackedTransitionCounts::reset(uint64_t word)
{
    prev_word_ = word & word_mask_;
    resetCounts();
}

void
PackedTransitionCounts::resetCounts()
{
    std::fill(self_.begin(), self_.end(), 0ull);
    std::fill(pair_.begin(), pair_.end(), int64_t{0});
}

Status
PackedTransitionCounts::restore(uint64_t prev_word,
                                std::span<const uint64_t> self,
                                std::span<const int64_t> pairs)
{
    if (self.size() != self_.size() || pairs.size() != pair_.size()) {
        return Status::failure(
            ErrorCode::InvalidArgument,
            "PackedTransitionCounts::restore: payload " +
                std::to_string(self.size()) + "/" +
                std::to_string(pairs.size()) +
                " counts for a counter shaped " +
                std::to_string(self_.size()) + "/" +
                std::to_string(pair_.size()));
    }
    prev_word_ = prev_word & word_mask_;
    std::copy(self.begin(), self.end(), self_.begin());
    std::copy(pairs.begin(), pairs.end(), pair_.begin());
    return Status();
}

} // namespace nanobus
