#include "energy/bus_energy.hh"

#include <algorithm>

#include "energy/packed.hh"
#include "energy/transition.hh"
#include "tech/repeater.hh"
#include "util/bitops.hh"
#include "util/contracts.hh"
#include "util/logging.hh"

namespace nanobus {

BusEnergyModel::BusEnergyModel(const TechnologyNode &tech,
                               const CapacitanceMatrix &caps)
    : BusEnergyModel(tech, caps, Config())
{
}

BusEnergyModel::BusEnergyModel(const TechnologyNode &tech,
                               const CapacitanceMatrix &caps,
                               const Config &config)
    : width_(caps.size()),
      radius_(std::min(config.coupling_radius,
                       caps.size() > 0 ? caps.size() - 1 : 0u)),
      half_vdd2_(0.5 * (tech.vdd * tech.vdd).raw()),
      last_word_(config.initial_word),
      word_mask_(lowMask(caps.size())),
      coupling_cap_(caps.size(), caps.size(), 0.0)
{
    if (width_ == 0 || width_ > 64)
        fatal("BusEnergyModel: width %u outside [1, 64]", width_);
    if (config.wire_length.raw() <= 0.0)
        fatal("BusEnergyModel: wire length %g must be positive",
              config.wire_length.raw());

    const Meters length = config.wire_length;
    RepeaterModel repeaters(tech, config.include_repeaters);
    const Farads c_rep = repeaters.totalCapacitance(length);

    // Per-line capacitances compose to farads before entering the
    // raw hot-path buffers.
    self_cap_.resize(width_);
    for (unsigned i = 0; i < width_; ++i) {
        self_cap_[i] = (caps.ground(i) * length + c_rep).raw();
        for (unsigned j = 0; j < width_; ++j) {
            if (i == j)
                continue;
            unsigned sep = j > i ? j - i : i - j;
            coupling_cap_(i, j) = sep <= radius_
                ? (caps.coupling(i, j) * length).raw()
                : 0.0;
        }
    }

    line_energy_.assign(width_, 0.0);
    acc_line_.assign(width_, 0.0);
    last_word_ &= word_mask_;

    kernel_ = config.kernel;
    final_prev_word_ = last_word_;
    if (kernel_ == TransitionKernel::Packed) {
        counts_ = std::make_unique<PackedTransitionCounts>(
            width_, radius_, last_word_);
        interval_self_base_.assign(width_, 0);
        interval_pair_base_.assign(
            static_cast<size_t>(width_) * counts_->storedRadius(),
            0);
    }
}

BusEnergyModel::~BusEnergyModel() = default;

Farads
BusEnergyModel::selfCapacitance(unsigned i) const
{
    if (i >= width_)
        panic("BusEnergyModel::selfCapacitance: line %u out of %u",
              i, width_);
    return Farads{self_cap_[i]};
}

Farads
BusEnergyModel::couplingCapacitance(unsigned i, unsigned j) const
{
    if (i >= width_ || j >= width_)
        panic("BusEnergyModel::couplingCapacitance: (%u, %u) out of %u",
              i, j, width_);
    return Farads{coupling_cap_(i, j)};
}

const std::vector<double> &
BusEnergyModel::transitionEnergy(uint64_t prev, uint64_t next)
{
    std::fill(line_energy_.begin(), line_energy_.end(), 0.0);
    last_ = EnergyBreakdown();

    uint64_t changed = (prev ^ next) & word_mask_;
    if (changed == 0)
        return line_energy_;

    // Energy is dissipated only in lines that themselves transition
    // (V_i = 0 makes both the self and every coupling term vanish),
    // so iterate over set bits of the change mask only.
    for (uint64_t bits = changed; bits;) {
        unsigned i = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;

        const int vi = bitOf(next, i) ? 1 : -1;

        double e_self = half_vdd2_ * self_cap_[i];

        double coupling_sum = 0.0;
        unsigned j_lo = i >= radius_ ? i - radius_ : 0;
        unsigned j_hi = std::min(width_ - 1, i + radius_);
        const double *row = coupling_cap_.rowPtr(i);
        for (unsigned j = j_lo; j <= j_hi; ++j) {
            if (j == i)
                continue;
            int vj = 0;
            if ((changed >> j) & 1ull)
                vj = bitOf(next, j) ? 1 : -1;
            // (V_i^2 - V_i V_j) with V_i^2 == 1: toggles contribute
            // 2 c (Miller doubling), same-direction pairs contribute
            // 0, charge/discharge contribute c.
            coupling_sum += row[j] *
                static_cast<double>(couplingFactor(vi, vj));
        }
        double e_coup = half_vdd2_ * coupling_sum;

        line_energy_[i] = e_self + e_coup;
        last_.self += Joules{e_self};
        last_.coupling += Joules{e_coup};
    }
    return line_energy_;
}

Joules
BusEnergyModel::step(uint64_t next)
{
    next &= word_mask_;
    if (kernel_ == TransitionKernel::Packed) {
        final_prev_word_ = last_word_;
        counts_->process(std::span<const uint64_t>(&next, 1));
        last_word_ = next;
        ++cycles_;
        deriveAccumulators();
        transitionEnergy(final_prev_word_, last_word_);
        return last_.total();
    }
    const std::vector<double> &energies =
        transitionEnergy(last_word_, next);
    for (unsigned i = 0; i < width_; ++i)
        acc_line_[i] += energies[i];
    acc_ += last_;
    last_word_ = next;
    ++cycles_;
    return last_.total();
}

void
BusEnergyModel::stepBatch(std::span<const uint64_t> words,
                          std::span<double> interval_line_acc,
                          EnergyBreakdown &interval_acc)
{
    NANOBUS_EXPECT(interval_line_acc.size() == width_,
                   "stepBatch: scratch has %zu slots for a %u-line "
                   "bus", interval_line_acc.size(), width_);
    if (kernel_ == TransitionKernel::Packed) {
        // Counts only; the caller's interval spans stay untouched
        // (interval energies derive from beginInterval()/
        // intervalEnergy() count deltas instead — see the header).
        const size_t n = words.size();
        if (n == 0)
            return;
        final_prev_word_ =
            n >= 2 ? (words[n - 2] & word_mask_) : last_word_;
        counts_->process(words);
        last_word_ = counts_->prevWord();
        cycles_ += n;
        deriveAccumulators();
        // Re-derive the final transition through the scalar
        // evaluator: for a single transition the count form reduces
        // to it exactly, so lastBreakdown()/lastLineEnergy() keep
        // scalar-identical semantics.
        transitionEnergy(final_prev_word_, last_word_);
        return;
    }
    uint64_t last = last_word_;
    for (size_t k = 0; k < words.size(); ++k) {
        const uint64_t next = words[k] & word_mask_;
        transitionEnergy(last, next);
        // Each accumulator sees the same per-word addition sequence
        // as step() + the caller's per-record loop, so the sums are
        // bit-identical to the per-record path.
        for (unsigned i = 0; i < width_; ++i) {
            const double e = line_energy_[i];
            acc_line_[i] += e;
            interval_line_acc[i] += e;
        }
        acc_ += last_;
        interval_acc += last_;
        last = next;
    }
    last_word_ = last;
    cycles_ += words.size();
}

void
BusEnergyModel::resetAccumulation()
{
    std::fill(acc_line_.begin(), acc_line_.end(), 0.0);
    acc_ = EnergyBreakdown();
    cycles_ = 0;
    if (kernel_ == TransitionKernel::Packed) {
        counts_->resetCounts();
        std::fill(interval_self_base_.begin(),
                  interval_self_base_.end(), 0ull);
        std::fill(interval_pair_base_.begin(),
                  interval_pair_base_.end(), int64_t{0});
    }
}

Status
BusEnergyModel::restoreAccumulation(uint64_t last_word,
                                    const std::vector<double> &acc_line,
                                    const EnergyBreakdown &acc,
                                    uint64_t cycles)
{
    if (kernel_ == TransitionKernel::Packed) {
        return Status::failure(
            ErrorCode::InvalidArgument,
            "restoreAccumulation: packed-kernel models restore "
            "through restorePackedState()");
    }
    if (acc_line.size() != width_) {
        return Status::failure(
            ErrorCode::InvalidArgument,
            "restoreAccumulation: " +
                std::to_string(acc_line.size()) +
                " per-line accumulators for a " +
                std::to_string(width_) + "-wire bus");
    }
    last_word_ = last_word & word_mask_;
    acc_line_ = acc_line;
    acc_ = acc;
    cycles_ = cycles;
    return Status();
}

void
BusEnergyModel::deriveEnergies(const uint64_t *self_base,
                               const int64_t *pair_base,
                               std::span<double> line_out,
                               EnergyBreakdown &out) const
{
    // One shared derivation for whole-run and interval energies:
    // per line, E_i = 0.5 Vdd^2 (C_self N_i + sum_j c_ij (N_i +
    // D_ij)), where N_i and D_ij are exact integer counts (deltas
    // against the baseline when one is given). The j window and its
    // ascending order match transitionEnergy(), so for a single
    // transition this reduces to it bitwise.
    out = EnergyBreakdown();
    const unsigned stride = counts_->storedRadius();
    for (unsigned i = 0; i < width_; ++i) {
        const uint64_t n =
            counts_->selfCount(i) - (self_base ? self_base[i] : 0);
        const double e_self =
            half_vdd2_ * self_cap_[i] * static_cast<double>(n);

        double coupling_sum = 0.0;
        const double *row = coupling_cap_.rowPtr(i);
        const unsigned j_lo = i >= radius_ ? i - radius_ : 0;
        const unsigned j_hi = std::min(width_ - 1, i + radius_);
        for (unsigned j = j_lo; j <= j_hi; ++j) {
            if (j == i)
                continue;
            int64_t dev = counts_->pairDeviationAt(i, j);
            if (pair_base) {
                const unsigned lo = i < j ? i : j;
                const unsigned d = i < j ? j - i : i - j;
                if (d <= stride) {
                    dev -= pair_base[static_cast<size_t>(lo) *
                                         stride +
                                     (d - 1)];
                }
            }
            coupling_sum += row[j] *
                static_cast<double>(static_cast<int64_t>(n) + dev);
        }
        const double e_coup = half_vdd2_ * coupling_sum;

        line_out[i] = e_self + e_coup;
        out.self += Joules{e_self};
        out.coupling += Joules{e_coup};
    }
}

void
BusEnergyModel::deriveAccumulators()
{
    deriveEnergies(nullptr, nullptr, acc_line_, acc_);
}

void
BusEnergyModel::beginInterval()
{
    if (kernel_ != TransitionKernel::Packed)
        return;
    std::span<const uint64_t> self = counts_->selfCounts();
    std::span<const int64_t> pairs = counts_->pairDeviations();
    std::copy(self.begin(), self.end(),
              interval_self_base_.begin());
    std::copy(pairs.begin(), pairs.end(),
              interval_pair_base_.begin());
}

void
BusEnergyModel::intervalEnergy(std::span<double> line_out,
                               EnergyBreakdown &out) const
{
    if (kernel_ != TransitionKernel::Packed)
        panic("intervalEnergy: scalar-kernel models account "
              "intervals through the stepBatch spans");
    NANOBUS_EXPECT(line_out.size() == width_,
                   "intervalEnergy: %zu slots for a %u-line bus",
                   line_out.size(), width_);
    deriveEnergies(interval_self_base_.data(),
                   interval_pair_base_.data(), line_out, out);
}

unsigned
BusEnergyModel::packedPairStride() const
{
    if (kernel_ != TransitionKernel::Packed)
        panic("packedPairStride: model runs the scalar kernel");
    return counts_->storedRadius();
}

BusEnergyModel::PackedState
BusEnergyModel::capturePackedState() const
{
    if (kernel_ != TransitionKernel::Packed)
        panic("capturePackedState: model runs the scalar kernel");
    PackedState state;
    state.last_word = last_word_;
    state.final_prev_word = final_prev_word_;
    state.cycles = cycles_;
    std::span<const uint64_t> self = counts_->selfCounts();
    std::span<const int64_t> pairs = counts_->pairDeviations();
    state.self.assign(self.begin(), self.end());
    state.pairs.assign(pairs.begin(), pairs.end());
    state.interval_self = interval_self_base_;
    state.interval_pairs = interval_pair_base_;
    return state;
}

Status
BusEnergyModel::restorePackedState(const PackedState &state)
{
    if (kernel_ != TransitionKernel::Packed) {
        return Status::failure(
            ErrorCode::InvalidArgument,
            "restorePackedState: model runs the scalar kernel");
    }
    if (state.interval_self.size() != interval_self_base_.size() ||
        state.interval_pairs.size() != interval_pair_base_.size()) {
        return Status::failure(
            ErrorCode::InvalidArgument,
            "restorePackedState: interval baseline shape mismatch");
    }
    Status restored = counts_->restore(state.last_word, state.self,
                                       state.pairs);
    if (!restored.ok())
        return restored;
    last_word_ = state.last_word & word_mask_;
    final_prev_word_ = state.final_prev_word & word_mask_;
    cycles_ = state.cycles;
    interval_self_base_ = state.interval_self;
    interval_pair_base_ = state.interval_pairs;
    deriveAccumulators();
    transitionEnergy(final_prev_word_, last_word_);
    return Status();
}

} // namespace nanobus
