#include "energy/bus_energy.hh"

#include <algorithm>

#include "energy/transition.hh"
#include "tech/repeater.hh"
#include "util/bitops.hh"
#include "util/contracts.hh"
#include "util/logging.hh"

namespace nanobus {

BusEnergyModel::BusEnergyModel(const TechnologyNode &tech,
                               const CapacitanceMatrix &caps)
    : BusEnergyModel(tech, caps, Config())
{
}

BusEnergyModel::BusEnergyModel(const TechnologyNode &tech,
                               const CapacitanceMatrix &caps,
                               const Config &config)
    : width_(caps.size()),
      radius_(std::min(config.coupling_radius,
                       caps.size() > 0 ? caps.size() - 1 : 0u)),
      half_vdd2_(0.5 * (tech.vdd * tech.vdd).raw()),
      last_word_(config.initial_word),
      word_mask_(lowMask(caps.size())),
      coupling_cap_(caps.size(), caps.size(), 0.0)
{
    if (width_ == 0 || width_ > 64)
        fatal("BusEnergyModel: width %u outside [1, 64]", width_);
    if (config.wire_length.raw() <= 0.0)
        fatal("BusEnergyModel: wire length %g must be positive",
              config.wire_length.raw());

    const Meters length = config.wire_length;
    RepeaterModel repeaters(tech, config.include_repeaters);
    const Farads c_rep = repeaters.totalCapacitance(length);

    // Per-line capacitances compose to farads before entering the
    // raw hot-path buffers.
    self_cap_.resize(width_);
    for (unsigned i = 0; i < width_; ++i) {
        self_cap_[i] = (caps.ground(i) * length + c_rep).raw();
        for (unsigned j = 0; j < width_; ++j) {
            if (i == j)
                continue;
            unsigned sep = j > i ? j - i : i - j;
            coupling_cap_(i, j) = sep <= radius_
                ? (caps.coupling(i, j) * length).raw()
                : 0.0;
        }
    }

    line_energy_.assign(width_, 0.0);
    acc_line_.assign(width_, 0.0);
    last_word_ &= word_mask_;
}

Farads
BusEnergyModel::selfCapacitance(unsigned i) const
{
    if (i >= width_)
        panic("BusEnergyModel::selfCapacitance: line %u out of %u",
              i, width_);
    return Farads{self_cap_[i]};
}

Farads
BusEnergyModel::couplingCapacitance(unsigned i, unsigned j) const
{
    if (i >= width_ || j >= width_)
        panic("BusEnergyModel::couplingCapacitance: (%u, %u) out of %u",
              i, j, width_);
    return Farads{coupling_cap_(i, j)};
}

const std::vector<double> &
BusEnergyModel::transitionEnergy(uint64_t prev, uint64_t next)
{
    std::fill(line_energy_.begin(), line_energy_.end(), 0.0);
    last_ = EnergyBreakdown();

    uint64_t changed = (prev ^ next) & word_mask_;
    if (changed == 0)
        return line_energy_;

    // Energy is dissipated only in lines that themselves transition
    // (V_i = 0 makes both the self and every coupling term vanish),
    // so iterate over set bits of the change mask only.
    for (uint64_t bits = changed; bits;) {
        unsigned i = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;

        const int vi = bitOf(next, i) ? 1 : -1;

        double e_self = half_vdd2_ * self_cap_[i];

        double coupling_sum = 0.0;
        unsigned j_lo = i >= radius_ ? i - radius_ : 0;
        unsigned j_hi = std::min(width_ - 1, i + radius_);
        const double *row = coupling_cap_.rowPtr(i);
        for (unsigned j = j_lo; j <= j_hi; ++j) {
            if (j == i)
                continue;
            int vj = 0;
            if ((changed >> j) & 1ull)
                vj = bitOf(next, j) ? 1 : -1;
            // (V_i^2 - V_i V_j) with V_i^2 == 1: toggles contribute
            // 2 c (Miller doubling), same-direction pairs contribute
            // 0, charge/discharge contribute c.
            coupling_sum += row[j] *
                static_cast<double>(couplingFactor(vi, vj));
        }
        double e_coup = half_vdd2_ * coupling_sum;

        line_energy_[i] = e_self + e_coup;
        last_.self += Joules{e_self};
        last_.coupling += Joules{e_coup};
    }
    return line_energy_;
}

Joules
BusEnergyModel::step(uint64_t next)
{
    next &= word_mask_;
    const std::vector<double> &energies =
        transitionEnergy(last_word_, next);
    for (unsigned i = 0; i < width_; ++i)
        acc_line_[i] += energies[i];
    acc_ += last_;
    last_word_ = next;
    ++cycles_;
    return last_.total();
}

void
BusEnergyModel::stepBatch(std::span<const uint64_t> words,
                          std::span<double> interval_line_acc,
                          EnergyBreakdown &interval_acc)
{
    NANOBUS_EXPECT(interval_line_acc.size() == width_,
                   "stepBatch: scratch has %zu slots for a %u-line "
                   "bus", interval_line_acc.size(), width_);
    uint64_t last = last_word_;
    for (size_t k = 0; k < words.size(); ++k) {
        const uint64_t next = words[k] & word_mask_;
        transitionEnergy(last, next);
        // Each accumulator sees the same per-word addition sequence
        // as step() + the caller's per-record loop, so the sums are
        // bit-identical to the per-record path.
        for (unsigned i = 0; i < width_; ++i) {
            const double e = line_energy_[i];
            acc_line_[i] += e;
            interval_line_acc[i] += e;
        }
        acc_ += last_;
        interval_acc += last_;
        last = next;
    }
    last_word_ = last;
    cycles_ += words.size();
}

void
BusEnergyModel::resetAccumulation()
{
    std::fill(acc_line_.begin(), acc_line_.end(), 0.0);
    acc_ = EnergyBreakdown();
    cycles_ = 0;
}

Status
BusEnergyModel::restoreAccumulation(uint64_t last_word,
                                    const std::vector<double> &acc_line,
                                    const EnergyBreakdown &acc,
                                    uint64_t cycles)
{
    if (acc_line.size() != width_) {
        return Status::failure(
            ErrorCode::InvalidArgument,
            "restoreAccumulation: " +
                std::to_string(acc_line.size()) +
                " per-line accumulators for a " +
                std::to_string(width_) + "-wire bus");
    }
    last_word_ = last_word & word_mask_;
    acc_line_ = acc_line;
    acc_ = acc;
    cycles_ = cycles;
    return Status();
}

} // namespace nanobus
