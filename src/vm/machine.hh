/**
 * @file
 * The mini-VM execution engine.
 *
 * Executes a sealed Program one instruction per cycle, emitting the
 * instruction-fetch and load/store address stream as a TraceSource —
 * a drop-in replacement for the synthetic generator wherever a
 * genuinely executing workload is wanted (execution-driven bus
 * simulation).
 */

#ifndef NANOBUS_VM_MACHINE_HH
#define NANOBUS_VM_MACHINE_HH

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "trace/record.hh"
#include "vm/isa.hh"

namespace nanobus {

/** Sparse paged 32-bit word-addressable memory. */
class VmMemory
{
  public:
    /** Read a 32-bit word (must be 4-aligned); unmapped reads 0. */
    uint32_t loadWord(uint32_t address) const;

    /** Write a 32-bit word (must be 4-aligned). */
    void storeWord(uint32_t address, uint32_t value);

    /** Number of mapped 4 KiB pages. */
    size_t mappedPages() const { return pages_.size(); }

  private:
    static constexpr uint32_t page_bytes = 4096;
    std::unordered_map<uint32_t, std::vector<uint32_t>> pages_;
};

/** Execution engine. */
class VirtualMachine : public TraceSource
{
  public:
    /**
     * @param program Sealed program (copied).
     * @param code_base Address of instruction 0 (4-byte spacing).
     * @param stack_top Initial stack-pointer value.
     */
    explicit VirtualMachine(Program program,
                            uint32_t code_base = 0x00010000,
                            uint32_t stack_top = 0xffbe0000);

    /**
     * Produce the next address-bus record (ifetch, then any data
     * access of that cycle). Returns false once the machine has
     * halted and all records were drained.
     */
    bool next(TraceRecord &out) override;

    /**
     * Execute one instruction. Returns false if already halted.
     * next() calls this internally; tests may drive it directly.
     */
    bool step();

    /** Run until Halt or `max_cycles` (0 = no limit). Returns the
     *  number of instructions executed. */
    uint64_t run(uint64_t max_cycles = 0);

    /** True once Halt executed. */
    bool halted() const { return halted_; }

    /** Cycles (instructions) executed so far. */
    uint64_t cycle() const { return cycle_; }

    /** Register value (r0 always reads 0). */
    uint32_t reg(uint8_t index) const;

    /** Set a register (writes to r0 are ignored). */
    void setReg(uint8_t index, uint32_t value);

    /** Data memory, for pre-loading inputs and checking outputs. */
    VmMemory &memory() { return memory_; }
    const VmMemory &memory() const { return memory_; }

    /** Current instruction index. */
    uint32_t pc() const { return pc_; }

    /** Address of instruction `index` in the fetch address space. */
    uint32_t codeAddress(uint32_t index) const
    {
        return code_base_ + 4 * index;
    }

  private:
    void execute(const Instruction &instruction);

    Program program_;
    const std::vector<Instruction> *code_;
    VmMemory memory_;
    std::array<uint32_t, 16> regs_{};
    uint32_t code_base_;
    uint32_t pc_ = 0;       // instruction index
    uint64_t cycle_ = 0;
    bool halted_ = false;

    /** Records produced by the current cycle, drained by next(). */
    std::optional<TraceRecord> pending_data_;
};

} // namespace nanobus

#endif // NANOBUS_VM_MACHINE_HH
