/**
 * @file
 * Instruction set of the nanobus mini-VM.
 *
 * The paper positions its model for use "in a trace-driven setup or
 * in a power/performance simulator"; the vm module provides the
 * latter: a small RISC-like machine that *executes* kernels and
 * drives the bus models with the genuine fetch/load/store address
 * streams of running code (as opposed to the statistical streams of
 * trace/synthetic.hh).
 *
 * The ISA is deliberately minimal but real: 16 x 32-bit registers,
 * three-address ALU ops, immediate forms, word loads/stores with
 * register+offset addressing, compare-and-branch, and call/return
 * through a link register. Instructions are 4 bytes apart in the
 * address space so fetch streams look like real text segments.
 */

#ifndef NANOBUS_VM_ISA_HH
#define NANOBUS_VM_ISA_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nanobus {

/** Opcodes of the mini-VM. */
enum class Op : uint8_t {
    Nop,
    Halt,
    /** rd = rs1 + rs2 */
    Add,
    /** rd = rs1 - rs2 */
    Sub,
    /** rd = rs1 * rs2 */
    Mul,
    /** rd = rs1 + imm */
    AddI,
    /** rd = rs1 & rs2 */
    And,
    /** rd = rs1 | rs2 */
    Or,
    /** rd = rs1 ^ rs2 */
    Xor,
    /** rd = rs1 << (imm & 31) */
    ShlI,
    /** rd = rs1 >> (imm & 31), logical */
    ShrI,
    /** rd = mem32[rs1 + imm] */
    LoadW,
    /** mem32[rs1 + imm] = rs2 */
    StoreW,
    /** if (rs1 == rs2) goto imm (instruction index) */
    Beq,
    /** if (rs1 != rs2) goto imm */
    Bne,
    /** if ((int32)rs1 < (int32)rs2) goto imm */
    Blt,
    /** if ((int32)rs1 >= (int32)rs2) goto imm */
    Bge,
    /** goto imm */
    Jump,
    /** ra = next index; goto imm */
    Call,
    /** goto ra */
    Ret,
};

/** Readable opcode name. */
const char *opName(Op op);

/** One decoded instruction. */
struct Instruction
{
    Op op = Op::Nop;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    /** Immediate / branch target (instruction index). */
    int32_t imm = 0;

    bool operator==(const Instruction &) const = default;
};

/** Register conventions. */
namespace reg {
/** Hardwired zero. */
inline constexpr uint8_t zero = 0;
/** Stack pointer (initialized to the stack top). */
inline constexpr uint8_t sp = 13;
/** Frame/temporary by convention. */
inline constexpr uint8_t fp = 14;
/** Link register written by Call. */
inline constexpr uint8_t ra = 15;
} // namespace reg

/**
 * Two-pass program builder with labels.
 *
 * Branch/jump/call targets may reference labels that are bound
 * later; seal() resolves them and freezes the program.
 */
class Program
{
  public:
    /** Opaque label handle. */
    using Label = size_t;

    /** Create an unbound label. */
    Label newLabel();

    /** Bind a label to the next emitted instruction. */
    void bind(Label label);

    /** Emit a fully resolved instruction; returns its index. */
    size_t emit(const Instruction &instruction);

    /** Emit an ALU register op. */
    size_t alu(Op op, uint8_t rd, uint8_t rs1, uint8_t rs2);

    /** Emit rd = rs1 + imm. */
    size_t addi(uint8_t rd, uint8_t rs1, int32_t imm);

    /** Emit rd = imm (via AddI from zero). */
    size_t loadImm(uint8_t rd, int32_t imm);

    /** Emit a shift-immediate. */
    size_t shift(Op op, uint8_t rd, uint8_t rs1, int32_t amount);

    /** Emit rd = mem32[rs1 + imm]. */
    size_t load(uint8_t rd, uint8_t rs1, int32_t imm);

    /** Emit mem32[rs1 + imm] = rs2. */
    size_t store(uint8_t rs2, uint8_t rs1, int32_t imm);

    /** Emit a compare-and-branch to a label. */
    size_t branch(Op op, uint8_t rs1, uint8_t rs2, Label target);

    /** Emit an unconditional jump to a label. */
    size_t jump(Label target);

    /** Emit a call to a label. */
    size_t call(Label target);

    /** Emit a return through ra. */
    size_t ret();

    /** Emit Halt. */
    size_t halt();

    /** Number of instructions emitted so far. */
    size_t size() const { return code_.size(); }

    /**
     * Resolve all label references; calls fatal() on unbound labels
     * or out-of-range targets. Idempotent.
     */
    void seal();

    /** Sealed instruction list. */
    const std::vector<Instruction> &code() const;

  private:
    size_t emitLabelled(Instruction instruction, Label target);

    std::vector<Instruction> code_;
    std::vector<int64_t> labels_;          // index or -1 if unbound
    /** (instruction index, label) fixups awaiting seal(). */
    std::vector<std::pair<size_t, Label>> fixups_;
    bool sealed_ = false;
};

} // namespace nanobus

#endif // NANOBUS_VM_ISA_HH
