/**
 * @file
 * Ready-made workload kernels for the mini-VM.
 *
 * Each builder returns a sealed program (and documents its memory
 * layout) implementing a classic kernel whose address-stream
 * character differs sharply: streaming copy (unit stride), dense
 * matrix multiply (nested loops, mixed strides), linked-list walk
 * (data-dependent pointer chasing — the mcf-like case), and a
 * strided reduction. Together they span the regimes the paper's
 * SPEC benchmarks cover, but as genuinely executing code.
 */

#ifndef NANOBUS_VM_KERNELS_HH
#define NANOBUS_VM_KERNELS_HH

#include <cstdint>

#include "vm/machine.hh"

namespace nanobus {
namespace kernels {

/** Default data-segment base used by the kernel builders. */
inline constexpr uint32_t data_base = 0x20000000;

/**
 * memcpy: copy `words` 32-bit words from `src` to `dst`.
 * Result: dst[i] = src[i]. Streaming loads+stores, unit stride.
 */
Program buildMemcpy(uint32_t src, uint32_t dst, uint32_t words);

/**
 * saxpy-style strided reduction: sum += x[i] for i stepping by
 * `stride_words` over `count` elements; the total lands in r1.
 */
Program buildStridedSum(uint32_t base, uint32_t count,
                        uint32_t stride_words);

/**
 * Dense n x n x n integer matrix multiply C = A * B.
 * A at `a`, B at `b`, C at `c`, row-major 32-bit words.
 */
Program buildMatMul(uint32_t a, uint32_t b, uint32_t c, uint32_t n);

/**
 * Linked-list walk: nodes are {next, payload} word pairs; walks
 * from `head` until next == 0, accumulating payloads into r1.
 * Use buildListInMemory() to lay out a shuffled list first.
 */
Program buildListWalk(uint32_t head);

/**
 * Lay out a linked list of `nodes` two-word nodes inside
 * [base, base + region_bytes), in an order shuffled by `seed`, with
 * payload[i] = i + 1. Returns the head node's address.
 */
uint32_t buildListInMemory(VirtualMachine &vm, uint32_t base,
                           uint32_t region_bytes, uint32_t nodes,
                           uint64_t seed);

} // namespace kernels
} // namespace nanobus

#endif // NANOBUS_VM_KERNELS_HH
