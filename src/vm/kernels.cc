#include "vm/kernels.hh"

#include <vector>

#include "util/logging.hh"
#include "util/random.hh"

namespace nanobus {
namespace kernels {

namespace {

/** Register roles shared by the kernels (sp/ra left untouched). */
constexpr uint8_t r_acc = 1;
constexpr uint8_t r_i = 2;
constexpr uint8_t r_j = 3;
constexpr uint8_t r_k = 4;
constexpr uint8_t r_t0 = 5;
constexpr uint8_t r_t1 = 6;
constexpr uint8_t r_t2 = 7;
constexpr uint8_t r_t3 = 8;
constexpr uint8_t r_t4 = 9;
constexpr uint8_t r_n = 10;
constexpr uint8_t r_base_a = 11;
constexpr uint8_t r_base_b = 12;
constexpr uint8_t r_base_c = 14; // fp slot; sp/ra stay reserved

int32_t
asImm(uint32_t value)
{
    return static_cast<int32_t>(value);
}

} // anonymous namespace

Program
buildMemcpy(uint32_t src, uint32_t dst, uint32_t words)
{
    Program p;
    auto loop = p.newLabel();
    auto done = p.newLabel();

    p.loadImm(r_i, 0);
    p.loadImm(r_t0, asImm(src));
    p.loadImm(r_t1, asImm(dst));
    p.loadImm(r_t2, asImm(words));
    p.bind(loop);
    p.branch(Op::Bge, r_i, r_t2, done);
    p.load(r_t3, r_t0, 0);
    p.store(r_t3, r_t1, 0);
    p.addi(r_t0, r_t0, 4);
    p.addi(r_t1, r_t1, 4);
    p.addi(r_i, r_i, 1);
    p.jump(loop);
    p.bind(done);
    p.halt();
    p.seal();
    return p;
}

Program
buildStridedSum(uint32_t base, uint32_t count, uint32_t stride_words)
{
    if (stride_words == 0)
        fatal("buildStridedSum: stride must be positive");
    Program p;
    auto loop = p.newLabel();
    auto done = p.newLabel();

    p.loadImm(r_acc, 0);
    p.loadImm(r_t0, asImm(base));
    p.loadImm(r_i, 0);
    p.loadImm(r_t2, asImm(count));
    p.bind(loop);
    p.branch(Op::Bge, r_i, r_t2, done);
    p.load(r_t3, r_t0, 0);
    p.alu(Op::Add, r_acc, r_acc, r_t3);
    p.addi(r_t0, r_t0, asImm(4 * stride_words));
    p.addi(r_i, r_i, 1);
    p.jump(loop);
    p.bind(done);
    p.halt();
    p.seal();
    return p;
}

Program
buildMatMul(uint32_t a, uint32_t b, uint32_t c, uint32_t n)
{
    if (n == 0)
        fatal("buildMatMul: n must be positive");
    Program p;
    auto iloop = p.newLabel();
    auto jloop = p.newLabel();
    auto kloop = p.newLabel();
    auto kdone = p.newLabel();
    auto jdone = p.newLabel();
    auto idone = p.newLabel();

    p.loadImm(r_n, asImm(n));
    p.loadImm(r_base_a, asImm(a));
    p.loadImm(r_base_b, asImm(b));
    p.loadImm(r_base_c, asImm(c));
    p.loadImm(r_i, 0);

    p.bind(iloop);
    p.branch(Op::Bge, r_i, r_n, idone);
    p.loadImm(r_j, 0);

    p.bind(jloop);
    p.branch(Op::Bge, r_j, r_n, jdone);
    p.loadImm(r_k, 0);
    p.loadImm(r_acc, 0);

    p.bind(kloop);
    p.branch(Op::Bge, r_k, r_n, kdone);
    // t0 = &A[i][k] = a + 4 (i n + k)
    p.alu(Op::Mul, r_t0, r_i, r_n);
    p.alu(Op::Add, r_t0, r_t0, r_k);
    p.shift(Op::ShlI, r_t0, r_t0, 2);
    p.alu(Op::Add, r_t0, r_t0, r_base_a);
    p.load(r_t1, r_t0, 0);
    // t2 = &B[k][j]
    p.alu(Op::Mul, r_t2, r_k, r_n);
    p.alu(Op::Add, r_t2, r_t2, r_j);
    p.shift(Op::ShlI, r_t2, r_t2, 2);
    p.alu(Op::Add, r_t2, r_t2, r_base_b);
    p.load(r_t3, r_t2, 0);
    // acc += A[i][k] * B[k][j]
    p.alu(Op::Mul, r_t4, r_t1, r_t3);
    p.alu(Op::Add, r_acc, r_acc, r_t4);
    p.addi(r_k, r_k, 1);
    p.jump(kloop);

    p.bind(kdone);
    // C[i][j] = acc
    p.alu(Op::Mul, r_t0, r_i, r_n);
    p.alu(Op::Add, r_t0, r_t0, r_j);
    p.shift(Op::ShlI, r_t0, r_t0, 2);
    p.alu(Op::Add, r_t0, r_t0, r_base_c);
    p.store(r_acc, r_t0, 0);
    p.addi(r_j, r_j, 1);
    p.jump(jloop);

    p.bind(jdone);
    p.addi(r_i, r_i, 1);
    p.jump(iloop);

    p.bind(idone);
    p.halt();
    p.seal();
    return p;
}

Program
buildListWalk(uint32_t head)
{
    Program p;
    auto loop = p.newLabel();
    auto done = p.newLabel();

    p.loadImm(r_acc, 0);
    p.loadImm(r_i, asImm(head));
    p.bind(loop);
    p.branch(Op::Beq, r_i, reg::zero, done);
    p.load(r_t0, r_i, 4);           // payload
    p.alu(Op::Add, r_acc, r_acc, r_t0);
    p.load(r_i, r_i, 0);            // next pointer
    p.jump(loop);
    p.bind(done);
    p.halt();
    p.seal();
    return p;
}

uint32_t
buildListInMemory(VirtualMachine &vm, uint32_t base,
                  uint32_t region_bytes, uint32_t nodes,
                  uint64_t seed)
{
    if (base % 8 != 0)
        fatal("buildListInMemory: base must be 8-aligned");
    uint32_t slots = region_bytes / 8;
    if (nodes == 0 || nodes > slots)
        fatal("buildListInMemory: %u nodes do not fit %u slots",
              nodes, slots);

    // Choose `nodes` distinct slots via a partial Fisher-Yates
    // shuffle so consecutive list nodes land at scattered addresses
    // (the pointer-chasing access pattern).
    std::vector<uint32_t> slot_ids(slots);
    for (uint32_t i = 0; i < slots; ++i)
        slot_ids[i] = i;
    Rng rng(seed);
    for (uint32_t i = 0; i < nodes; ++i) {
        uint32_t pick = i + static_cast<uint32_t>(
            rng.below(slots - i));
        std::swap(slot_ids[i], slot_ids[pick]);
    }

    auto node_addr = [&](uint32_t index) {
        return base + slot_ids[index] * 8;
    };
    for (uint32_t i = 0; i < nodes; ++i) {
        uint32_t addr = node_addr(i);
        uint32_t next = i + 1 < nodes ? node_addr(i + 1) : 0;
        vm.memory().storeWord(addr, next);
        vm.memory().storeWord(addr + 4, i + 1);
    }
    return node_addr(0);
}

} // namespace kernels
} // namespace nanobus
