#include "vm/machine.hh"

#include <utility>

#include "util/logging.hh"

namespace nanobus {

uint32_t
VmMemory::loadWord(uint32_t address) const
{
    if (address % 4 != 0)
        fatal("VmMemory: unaligned load at 0x%08x", address);
    auto it = pages_.find(address / page_bytes);
    if (it == pages_.end())
        return 0;
    return it->second[(address % page_bytes) / 4];
}

void
VmMemory::storeWord(uint32_t address, uint32_t value)
{
    if (address % 4 != 0)
        fatal("VmMemory: unaligned store at 0x%08x", address);
    auto &page = pages_[address / page_bytes];
    if (page.empty())
        page.assign(page_bytes / 4, 0);
    page[(address % page_bytes) / 4] = value;
}

VirtualMachine::VirtualMachine(Program program, uint32_t code_base,
                               uint32_t stack_top)
    : program_(std::move(program)), code_base_(code_base)
{
    program_.seal();
    code_ = &program_.code();
    if (code_->empty())
        fatal("VirtualMachine: empty program");
    regs_[reg::sp] = stack_top;
}

uint32_t
VirtualMachine::reg(uint8_t index) const
{
    if (index >= regs_.size())
        fatal("VirtualMachine: register r%u out of range", index);
    return index == reg::zero ? 0 : regs_[index];
}

void
VirtualMachine::setReg(uint8_t index, uint32_t value)
{
    if (index >= regs_.size())
        fatal("VirtualMachine: register r%u out of range", index);
    if (index != reg::zero)
        regs_[index] = value;
}

void
VirtualMachine::execute(const Instruction &inst)
{
    uint32_t next_pc = pc_ + 1;
    const uint32_t a = reg(inst.rs1);
    const uint32_t b = reg(inst.rs2);

    switch (inst.op) {
      case Op::Nop:
        break;
      case Op::Halt:
        halted_ = true;
        next_pc = pc_;
        break;
      case Op::Add:
        setReg(inst.rd, a + b);
        break;
      case Op::Sub:
        setReg(inst.rd, a - b);
        break;
      case Op::Mul:
        setReg(inst.rd, a * b);
        break;
      case Op::AddI:
        setReg(inst.rd, a + static_cast<uint32_t>(inst.imm));
        break;
      case Op::And:
        setReg(inst.rd, a & b);
        break;
      case Op::Or:
        setReg(inst.rd, a | b);
        break;
      case Op::Xor:
        setReg(inst.rd, a ^ b);
        break;
      case Op::ShlI:
        setReg(inst.rd, a << (inst.imm & 31));
        break;
      case Op::ShrI:
        setReg(inst.rd, a >> (inst.imm & 31));
        break;
      case Op::LoadW: {
        uint32_t address = a + static_cast<uint32_t>(inst.imm);
        setReg(inst.rd, memory_.loadWord(address));
        pending_data_ = TraceRecord{cycle_, address,
                                    AccessKind::Load};
        break;
      }
      case Op::StoreW: {
        uint32_t address = a + static_cast<uint32_t>(inst.imm);
        memory_.storeWord(address, b);
        pending_data_ = TraceRecord{cycle_, address,
                                    AccessKind::Store};
        break;
      }
      case Op::Beq:
        if (a == b)
            next_pc = static_cast<uint32_t>(inst.imm);
        break;
      case Op::Bne:
        if (a != b)
            next_pc = static_cast<uint32_t>(inst.imm);
        break;
      case Op::Blt:
        if (static_cast<int32_t>(a) < static_cast<int32_t>(b))
            next_pc = static_cast<uint32_t>(inst.imm);
        break;
      case Op::Bge:
        if (static_cast<int32_t>(a) >= static_cast<int32_t>(b))
            next_pc = static_cast<uint32_t>(inst.imm);
        break;
      case Op::Jump:
        next_pc = static_cast<uint32_t>(inst.imm);
        break;
      case Op::Call:
        setReg(reg::ra, pc_ + 1);
        next_pc = static_cast<uint32_t>(inst.imm);
        break;
      case Op::Ret:
        next_pc = reg(reg::ra);
        break;
    }

    if (!halted_ && next_pc >= code_->size())
        fatal("VirtualMachine: pc %u runs off the program (size "
              "%zu) at cycle %llu", next_pc, code_->size(),
              static_cast<unsigned long long>(cycle_));
    pc_ = next_pc;
}

bool
VirtualMachine::step()
{
    if (halted_)
        return false;
    const Instruction &inst = (*code_)[pc_];
    execute(inst);
    ++cycle_;
    return true;
}

uint64_t
VirtualMachine::run(uint64_t max_cycles)
{
    uint64_t executed = 0;
    while (!halted_ && (max_cycles == 0 || executed < max_cycles)) {
        step();
        pending_data_.reset();
        ++executed;
    }
    return executed;
}

bool
VirtualMachine::next(TraceRecord &out)
{
    if (pending_data_) {
        out = *pending_data_;
        pending_data_.reset();
        return true;
    }
    if (halted_)
        return false;

    // Fetch of the instruction about to execute, then execute it
    // (which may queue a data record for this same cycle).
    out.cycle = cycle_;
    out.address = codeAddress(pc_);
    out.kind = AccessKind::InstructionFetch;
    step();
    return true;
}

} // namespace nanobus
