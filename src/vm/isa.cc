#include "vm/isa.hh"

#include "util/logging.hh"

namespace nanobus {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop:    return "nop";
      case Op::Halt:   return "halt";
      case Op::Add:    return "add";
      case Op::Sub:    return "sub";
      case Op::Mul:    return "mul";
      case Op::AddI:   return "addi";
      case Op::And:    return "and";
      case Op::Or:     return "or";
      case Op::Xor:    return "xor";
      case Op::ShlI:   return "shli";
      case Op::ShrI:   return "shri";
      case Op::LoadW:  return "loadw";
      case Op::StoreW: return "storew";
      case Op::Beq:    return "beq";
      case Op::Bne:    return "bne";
      case Op::Blt:    return "blt";
      case Op::Bge:    return "bge";
      case Op::Jump:   return "jump";
      case Op::Call:   return "call";
      case Op::Ret:    return "ret";
    }
    return "?";
}

Program::Label
Program::newLabel()
{
    labels_.push_back(-1);
    return labels_.size() - 1;
}

void
Program::bind(Label label)
{
    if (label >= labels_.size())
        panic("Program::bind: unknown label %zu", label);
    if (labels_[label] >= 0)
        fatal("Program::bind: label %zu bound twice", label);
    labels_[label] = static_cast<int64_t>(code_.size());
}

size_t
Program::emit(const Instruction &instruction)
{
    if (sealed_)
        fatal("Program::emit: program already sealed");
    code_.push_back(instruction);
    return code_.size() - 1;
}

size_t
Program::emitLabelled(Instruction instruction, Label target)
{
    if (target >= labels_.size())
        panic("Program: unknown label %zu", target);
    size_t index = emit(instruction);
    fixups_.emplace_back(index, target);
    return index;
}

size_t
Program::alu(Op op, uint8_t rd, uint8_t rs1, uint8_t rs2)
{
    return emit({op, rd, rs1, rs2, 0});
}

size_t
Program::addi(uint8_t rd, uint8_t rs1, int32_t imm)
{
    return emit({Op::AddI, rd, rs1, 0, imm});
}

size_t
Program::loadImm(uint8_t rd, int32_t imm)
{
    return emit({Op::AddI, rd, reg::zero, 0, imm});
}

size_t
Program::shift(Op op, uint8_t rd, uint8_t rs1, int32_t amount)
{
    if (op != Op::ShlI && op != Op::ShrI)
        fatal("Program::shift: %s is not a shift", opName(op));
    return emit({op, rd, rs1, 0, amount});
}

size_t
Program::load(uint8_t rd, uint8_t rs1, int32_t imm)
{
    return emit({Op::LoadW, rd, rs1, 0, imm});
}

size_t
Program::store(uint8_t rs2, uint8_t rs1, int32_t imm)
{
    return emit({Op::StoreW, 0, rs1, rs2, imm});
}

size_t
Program::branch(Op op, uint8_t rs1, uint8_t rs2, Label target)
{
    if (op != Op::Beq && op != Op::Bne && op != Op::Blt &&
        op != Op::Bge)
        fatal("Program::branch: %s is not a branch", opName(op));
    return emitLabelled({op, 0, rs1, rs2, 0}, target);
}

size_t
Program::jump(Label target)
{
    return emitLabelled({Op::Jump, 0, 0, 0, 0}, target);
}

size_t
Program::call(Label target)
{
    return emitLabelled({Op::Call, 0, 0, 0, 0}, target);
}

size_t
Program::ret()
{
    return emit({Op::Ret, 0, 0, 0, 0});
}

size_t
Program::halt()
{
    return emit({Op::Halt, 0, 0, 0, 0});
}

void
Program::seal()
{
    if (sealed_)
        return;
    for (const auto &[index, label] : fixups_) {
        if (labels_[label] < 0)
            fatal("Program::seal: label %zu never bound", label);
        int64_t target = labels_[label];
        if (target > static_cast<int64_t>(code_.size()))
            fatal("Program::seal: label %zu target %lld out of "
                  "range", label, static_cast<long long>(target));
        code_[index].imm = static_cast<int32_t>(target);
    }
    fixups_.clear();
    sealed_ = true;
}

const std::vector<Instruction> &
Program::code() const
{
    if (!sealed_)
        fatal("Program::code: seal() the program first");
    return code_;
}

} // namespace nanobus
