#include "tech/technology.hh"

#include "util/logging.hh"
#include "util/units.hh"

namespace nanobus {

namespace {

using namespace units;

/**
 * Build the Table 1 entry for one node. R_0/C_0 are not in Table 1;
 * they are literature-typical minimum-inverter estimates (documented in
 * DESIGN.md) and only influence the reported repeater count/size, not
 * the repeater capacitance (which reduces to 0.756 C_int; Sec 3.1.1).
 */
TechnologyNode
makeNode(const char *name, double feature_nm, unsigned layers,
         double w_nm, double t_nm, double tild_nm, double eps_r,
         double kild, double fclk_ghz, double vdd, double jmax_ma_cm2,
         double cline_pf_m, double cinter_pf_m, double rwire_kohm_m,
         double r0_ohm, double c0_ff)
{
    TechnologyNode n;
    n.name = name;
    n.feature = Meters{fromNm(feature_nm)};
    n.metal_layers = layers;
    n.wire_width = Meters{fromNm(w_nm)};
    n.wire_thickness = Meters{fromNm(t_nm)};
    n.ild_height = Meters{fromNm(tild_nm)};
    n.epsilon_r = eps_r;
    n.k_ild = WattsPerMeterKelvin{kild};
    n.f_clk = Hertz{fromGhz(fclk_ghz)};
    n.vdd = Volts{vdd};
    n.j_max = AmpsPerCm2{fromMaPerCm2(jmax_ma_cm2)};
    n.c_line = FaradsPerMeter{fromPfPerM(cline_pf_m)};
    n.c_inter = FaradsPerMeter{fromPfPerM(cinter_pf_m)};
    n.r_wire = OhmsPerMeter{fromKohmPerM(rwire_kohm_m)};
    n.r0 = Ohms{r0_ohm};
    n.c0 = Farads{c0_ff * 1e-15};
    n.validate();
    return n;
}

} // anonymous namespace

const std::vector<ItrsNode> &
allItrsNodes()
{
    static const std::vector<ItrsNode> nodes = {
        ItrsNode::Nm130, ItrsNode::Nm90, ItrsNode::Nm65, ItrsNode::Nm45,
    };
    return nodes;
}

const char *
itrsNodeName(ItrsNode node)
{
    switch (node) {
      case ItrsNode::Nm130: return "130nm";
      case ItrsNode::Nm90:  return "90nm";
      case ItrsNode::Nm65:  return "65nm";
      case ItrsNode::Nm45:  return "45nm";
    }
    return "?";
}

const TechnologyNode &
itrsNode(ItrsNode node)
{
    // Values transcribed from Table 1 of the paper (ITRS-2001 geometry,
    // FastCap-derived capacitances, rho*l/(w*t) resistance).
    static const TechnologyNode nm130 = makeNode(
        "130nm", 130, 8, 335, 670, 724, 3.3, 0.60, 1.68, 1.1, 0.96,
        44.06, 91.72, 98.02, 6300, 2.0);
    static const TechnologyNode nm90 = makeNode(
        "90nm", 90, 9, 230, 482, 498, 2.8, 0.19, 3.99, 1.0, 1.5,
        32.77, 76.84, 198.45, 7000, 1.2);
    static const TechnologyNode nm65 = makeNode(
        "65nm", 65, 10, 145, 319, 329, 2.5, 0.12, 6.73, 0.7, 2.1,
        25.07, 68.42, 475.62, 8000, 0.75);
    static const TechnologyNode nm45 = makeNode(
        "45nm", 45, 10, 103, 236, 243, 2.1, 0.07, 11.51, 0.6, 2.7,
        19.05, 58.12, 905.05, 9000, 0.45);

    switch (node) {
      case ItrsNode::Nm130: return nm130;
      case ItrsNode::Nm90:  return nm90;
      case ItrsNode::Nm65:  return nm65;
      case ItrsNode::Nm45:  return nm45;
    }
    panic("itrsNode: unknown node %d", static_cast<int>(node));
}

OhmsPerMeter
TechnologyNode::rWireFromGeometry() const
{
    return OhmMeters{units::rho_copper} / (wire_width * wire_thickness);
}

void
TechnologyNode::validate() const
{
    if (wire_width.raw() <= 0.0 || wire_thickness.raw() <= 0.0 ||
        ild_height.raw() <= 0.0) {
        fatal("TechnologyNode %s: non-positive geometry", name.c_str());
    }
    if (vdd.raw() <= 0.0 || f_clk.raw() <= 0.0)
        fatal("TechnologyNode %s: non-positive Vdd or f_clk",
              name.c_str());
    if (c_line.raw() <= 0.0 || c_inter.raw() <= 0.0 ||
        r_wire.raw() <= 0.0) {
        fatal("TechnologyNode %s: non-positive RC parameters",
              name.c_str());
    }
    if (k_ild.raw() <= 0.0 || epsilon_r < 1.0)
        fatal("TechnologyNode %s: invalid dielectric parameters",
              name.c_str());
    if (metal_layers == 0)
        fatal("TechnologyNode %s: zero metal layers", name.c_str());
    if (j_max.raw() <= 0.0)
        fatal("TechnologyNode %s: non-positive j_max", name.c_str());
    if (r0.raw() <= 0.0 || c0.raw() <= 0.0)
        fatal("TechnologyNode %s: non-positive repeater R0/C0",
              name.c_str());
}

} // namespace nanobus
