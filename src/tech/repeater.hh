/**
 * @file
 * Optimal-repeater insertion model (Sec 3.1.1, Eqs 1-2).
 *
 * Repeaters inserted to hit minimum delay on a long global line add
 * their own input/output capacitance to the line load; the paper folds
 * the total repeater capacitance C_rep = h k C_0 into the self energy.
 * With the optimal sizing of Eqs 1-2 this reduces to
 * C_rep = sqrt(0.4/0.7) * C_int ~= 0.756 * C_int, independent of the
 * device parameters R_0/C_0 (they cancel).
 */

#ifndef NANOBUS_TECH_REPEATER_HH
#define NANOBUS_TECH_REPEATER_HH

#include "tech/technology.hh"
#include "util/units.hh"

namespace nanobus {

/** Result of optimal repeater sizing for one wire. */
struct RepeaterDesign
{
    /** Repeater size as a multiple of the minimum inverter (Eq 1). */
    double size_h = 0.0;
    /** Number of repeaters on the line (Eq 2, rounded up, >= 1). */
    unsigned count_k = 0;
    /** Unrounded repeater count from Eq 2. */
    double count_k_exact = 0.0;
    /** Total repeater capacitance h*k*C_0 on the line. */
    Farads total_capacitance;
};

/**
 * Computes optimal repeater designs for wires of a technology node.
 */
class RepeaterModel
{
  public:
    /**
     * @param tech Technology node providing wire RC and R_0/C_0.
     * @param enabled When false, design() reports zero repeaters
     *                (models an unrepeated bus for ablations).
     */
    explicit RepeaterModel(const TechnologyNode &tech,
                           bool enabled = true);

    /** Whether repeater insertion is modeled at all. */
    bool enabled() const { return enabled_; }

    /** Optimal design for a wire of the given length. */
    RepeaterDesign design(Meters wire_length) const;

    /**
     * Total repeater capacitance on a wire of the given length,
     * using the closed form h*k*C_0 = sqrt(0.4/0.7) * C_int * length
     * (exact repeater count kept continuous, as the paper does).
     */
    Farads totalCapacitance(Meters wire_length) const;

    /** The closed-form C_rep/C_int ratio sqrt(0.4/0.7). */
    static double capacitanceRatio();

  private:
    const TechnologyNode &tech_;
    bool enabled_;
};

} // namespace nanobus

#endif // NANOBUS_TECH_REPEATER_HH
