/**
 * @file
 * Temperature-dependent wire resistance and repeated-line delay.
 *
 * The paper warns that switching-induced temperature rise causes
 * "performance degradation due to changes in RC delay of wires (as a
 * result of temperature-dependent resistivity)". This module
 * quantifies that effect: copper resistivity scales as
 * rho(T) = rho(Tref) (1 + alpha (T - Tref)) with alpha ~= 0.39%/K,
 * and the delay of an optimally repeated global line follows the
 * standard Bakoglu two-term form per segment.
 */

#ifndef NANOBUS_TECH_DELAY_HH
#define NANOBUS_TECH_DELAY_HH

#include "tech/technology.hh"
#include "util/units.hh"

namespace nanobus {

/** Delay of one wire configuration at one temperature. */
struct LineDelay
{
    /** Total line delay. */
    Seconds total;
    /** Per-unit-length wire resistance used. */
    OhmsPerMeter r_wire;
    /** Repeater count used. */
    double repeater_count = 0.0;
    /** Repeater size used (x minimum inverter). */
    double repeater_size = 0.0;
};

/**
 * Temperature-aware delay model for a repeated global line.
 */
class DelayModel
{
  public:
    /**
     * @param tech Technology node; its Table 1 r_wire is taken to be
     *             quoted at `reference_temperature`.
     * @param reference_temperature Temperature of the Table 1
     *        resistance values; the paper's 318.15 K ambient.
     */
    explicit DelayModel(const TechnologyNode &tech,
                        Kelvin reference_temperature = Kelvin{318.15});

    /**
     * Per-unit-length wire resistance at temperature T:
     * r(T) = r_ref (1 + alpha_Cu (T - Tref)).
     */
    OhmsPerMeter rWireAt(Kelvin temperature) const;

    /**
     * Delay of a repeated line of the given length at temperature T.
     * Repeater sizing is fixed at the design point (Eqs 1-2 at the
     * reference temperature) — hardware cannot re-size itself when
     * wires heat up, which is exactly why temperature-dependent
     * resistance degrades a taped-out design.
     */
    LineDelay repeatedLineDelay(Meters wire_length,
                                Kelvin temperature) const;

    /**
     * repeatedLineDelay() with an explicit receiver load hung on the
     * end of the line: the final segment additionally charges
     * `receiver_load` through its driver and wire resistance.
     */
    LineDelay loadedLineDelay(Meters wire_length, Farads receiver_load,
                              Kelvin temperature) const;

    /**
     * Fractional delay increase at T versus the reference
     * temperature, for the given line length.
     */
    double delayDegradation(Meters wire_length,
                            Kelvin temperature) const;

  private:
    const TechnologyNode &tech_;
    Kelvin t_ref_;
};

} // namespace nanobus

#endif // NANOBUS_TECH_DELAY_HH
