/**
 * @file
 * ITRS technology-node parameters (Table 1 of the paper).
 *
 * Each TechnologyNode carries the wire geometry, electrical, and
 * thermal parameters for the topmost-layer interconnect of one ITRS
 * node. The four nodes the paper evaluates (130/90/65/45 nm) are
 * provided as built-ins via itrsNode(); all values are stored in SI
 * units (see util/units.hh) even though Table 1 quotes scaled units.
 */

#ifndef NANOBUS_TECH_TECHNOLOGY_HH
#define NANOBUS_TECH_TECHNOLOGY_HH

#include <string>
#include <vector>

#include "util/units.hh"

namespace nanobus {

/** The ITRS nodes evaluated by the paper. */
enum class ItrsNode {
    Nm130,
    Nm90,
    Nm65,
    Nm45,
};

/** All built-in nodes in scaling order (130 nm first). */
const std::vector<ItrsNode> &allItrsNodes();

/** Human-readable node name, e.g. "130nm". */
const char *itrsNodeName(ItrsNode node);

/**
 * Technology parameters for topmost-layer interconnect (Table 1).
 */
struct TechnologyNode
{
    /** Node name, e.g. "130nm". */
    std::string name;
    /** Feature size. */
    Meters feature;
    /** Number of metal layers. */
    unsigned metal_layers = 0;
    /** Wire width w_i. */
    Meters wire_width;
    /** Wire thickness t_i. */
    Meters wire_thickness;
    /** Height of inter-layer dielectric t_ild. */
    Meters ild_height;
    /** Relative permittivity of the dielectric (dimensionless). */
    double epsilon_r = 0.0;
    /** Thermal conductivity of the dielectric k_ild. */
    WattsPerMeterKelvin k_ild;
    /** Clock frequency. */
    Hertz f_clk;
    /** Supply voltage. */
    Volts vdd;
    /** Maximum wire current density j_max (stored in SI A/m^2). */
    AmpsPerCm2 j_max;
    /** Self capacitance of wire c_line. */
    FaradsPerMeter c_line;
    /** Adjacent-neighbor coupling capacitance c_inter. */
    FaradsPerMeter c_inter;
    /** Wire resistance r_wire. */
    OhmsPerMeter r_wire;
    /** Minimum-inverter output resistance R_0 (for Eqs 1-2). */
    Ohms r0;
    /** Minimum-inverter input capacitance C_0 (for Eqs 1-2). */
    Farads c0;

    /**
     * Inter-wire spacing s_i. Per ITRS (and the paper), spacing
     * equals wire width at minimum pitch.
     */
    Meters spacing() const { return wire_width; }

    /**
     * Per-unit-length interconnect load C_int = c_line + 2 c_inter,
     * the capacitance a repeater chain must drive (Sec 3.1.1).
     */
    FaradsPerMeter cIntPerMetre() const
    {
        return c_line + 2.0 * c_inter;
    }

    /** Clock period. */
    Seconds clockPeriod() const { return 1.0 / f_clk; }

    /**
     * Wire resistance recomputed from geometry, r = rho l / (w t),
     * per unit length; used to cross-check Table 1's r_wire.
     */
    OhmsPerMeter rWireFromGeometry() const;

    /** Validate invariants; calls fatal() on inconsistent values. */
    void validate() const;
};

/** Built-in Table 1 parameters for one of the paper's nodes. */
const TechnologyNode &itrsNode(ItrsNode node);

} // namespace nanobus

#endif // NANOBUS_TECH_TECHNOLOGY_HH
