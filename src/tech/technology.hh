/**
 * @file
 * ITRS technology-node parameters (Table 1 of the paper).
 *
 * Each TechnologyNode carries the wire geometry, electrical, and
 * thermal parameters for the topmost-layer interconnect of one ITRS
 * node. The four nodes the paper evaluates (130/90/65/45 nm) are
 * provided as built-ins via itrsNode(); all values are stored in SI
 * units (see util/units.hh) even though Table 1 quotes scaled units.
 */

#ifndef NANOBUS_TECH_TECHNOLOGY_HH
#define NANOBUS_TECH_TECHNOLOGY_HH

#include <string>
#include <vector>

namespace nanobus {

/** The ITRS nodes evaluated by the paper. */
enum class ItrsNode {
    Nm130,
    Nm90,
    Nm65,
    Nm45,
};

/** All built-in nodes in scaling order (130 nm first). */
const std::vector<ItrsNode> &allItrsNodes();

/** Human-readable node name, e.g. "130nm". */
const char *itrsNodeName(ItrsNode node);

/**
 * Technology parameters for topmost-layer interconnect (Table 1).
 */
struct TechnologyNode
{
    /** Node name, e.g. "130nm". */
    std::string name;
    /** Feature size [m]. */
    double feature = 0.0;
    /** Number of metal layers. */
    unsigned metal_layers = 0;
    /** Wire width w_i [m]. */
    double wire_width = 0.0;
    /** Wire thickness t_i [m]. */
    double wire_thickness = 0.0;
    /** Height of inter-layer dielectric t_ild [m]. */
    double ild_height = 0.0;
    /** Relative permittivity of the dielectric. */
    double epsilon_r = 0.0;
    /** Thermal conductivity of the dielectric k_ild [W/(m K)]. */
    double k_ild = 0.0;
    /** Clock frequency [Hz]. */
    double f_clk = 0.0;
    /** Supply voltage [V]. */
    double vdd = 0.0;
    /** Maximum wire current density j_max [A/m^2]. */
    double j_max = 0.0;
    /** Self capacitance of wire c_line [F/m]. */
    double c_line = 0.0;
    /** Adjacent-neighbor coupling capacitance c_inter [F/m]. */
    double c_inter = 0.0;
    /** Wire resistance r_wire [ohm/m]. */
    double r_wire = 0.0;
    /** Minimum-inverter output resistance R_0 [ohm] (for Eqs 1-2). */
    double r0 = 0.0;
    /** Minimum-inverter input capacitance C_0 [F] (for Eqs 1-2). */
    double c0 = 0.0;

    /**
     * Inter-wire spacing s_i [m]. Per ITRS (and the paper), spacing
     * equals wire width at minimum pitch.
     */
    double spacing() const { return wire_width; }

    /**
     * Per-unit-length interconnect load C_int = c_line + 2 c_inter
     * [F/m], the capacitance a repeater chain must drive (Sec 3.1.1).
     */
    double cIntPerMetre() const { return c_line + 2.0 * c_inter; }

    /** Clock period [s]. */
    double clockPeriod() const { return 1.0 / f_clk; }

    /**
     * Wire resistance recomputed from geometry, r = rho l / (w t),
     * per unit length [ohm/m]; used to cross-check Table 1's r_wire.
     */
    double rWireFromGeometry() const;

    /** Validate invariants; calls fatal() on inconsistent values. */
    void validate() const;
};

/** Built-in Table 1 parameters for one of the paper's nodes. */
const TechnologyNode &itrsNode(ItrsNode node);

} // namespace nanobus

#endif // NANOBUS_TECH_TECHNOLOGY_HH
