/**
 * @file
 * Metal layer stack model for inter-layer heat transfer (Sec 4.1.2).
 *
 * The paper's Eq 7 attributes a constant temperature rise to global
 * wires from heat generated in the lower metal layers (assumed to
 * carry current at density j_max) conducting up through the ILD stack.
 * This module builds the per-layer geometry that the thermal module's
 * InterLayerModel integrates over.
 */

#ifndef NANOBUS_TECH_LAYER_STACK_HH
#define NANOBUS_TECH_LAYER_STACK_HH

#include <vector>

#include "tech/technology.hh"
#include "util/units.hh"

namespace nanobus {

/** Geometry and thermal data for one metal layer + the ILD under it. */
struct MetalLayer
{
    /** 1-based layer index, 1 = bottom, stack size = top. */
    unsigned index = 0;
    /** Wire width on this layer. */
    Meters width;
    /** Wire spacing on this layer. */
    Meters spacing;
    /** Metal thickness t_j. */
    Meters thickness;
    /** ILD height under this layer t_ild,j. */
    Meters ild_height;
    /** ILD thermal conductivity under this layer. */
    WattsPerMeterKelvin k_ild;
    /** Thermal coupling / coverage factor alpha_j (paper uses 0.5). */
    double coverage = 0.5;

    /** Metal density w/(w+s) of this layer (dimensionless). */
    double metalDensity() const { return width / (width + spacing); }
};

/**
 * Per-node metal layer stack.
 *
 * By default every layer reuses the node's top-layer geometry — the
 * paper gives geometry only for the topmost layer, and semi-global /
 * global stacks use near-uniform thick wiring. A linear "taper" toward
 * scaled-down lower layers is available for sensitivity studies
 * (taper = 1.0 reproduces the default; taper = 0.45 makes the bottom
 * layer 0.45x the top geometry).
 */
class MetalLayerStack
{
  public:
    /**
     * @param tech Source technology node.
     * @param taper Bottom-layer geometry scale relative to the top
     *              layer, in (0, 1]; interpolated linearly per layer.
     * @param coverage Thermal coupling factor alpha for every layer.
     */
    explicit MetalLayerStack(const TechnologyNode &tech,
                             double taper = 1.0, double coverage = 0.5);

    /** Number of metal layers. */
    size_t size() const { return layers_.size(); }

    /** Layer by 0-based position (0 = bottom). */
    const MetalLayer &layer(size_t i) const;

    /** All layers, bottom first. */
    const std::vector<MetalLayer> &layers() const { return layers_; }

    /** The top (global) layer. */
    const MetalLayer &top() const { return layers_.back(); }

  private:
    std::vector<MetalLayer> layers_;
};

} // namespace nanobus

#endif // NANOBUS_TECH_LAYER_STACK_HH
