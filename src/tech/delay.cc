#include "tech/delay.hh"

#include <cmath>

#include "tech/repeater.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace nanobus {

DelayModel::DelayModel(const TechnologyNode &tech,
                       double reference_temperature)
    : tech_(tech), t_ref_(reference_temperature)
{
    if (t_ref_ <= 0.0)
        fatal("DelayModel: reference temperature %g K must be "
              "positive", t_ref_);
}

double
DelayModel::rWireAt(double temperature) const
{
    return tech_.r_wire *
        (1.0 + units::tcr_copper * (temperature - t_ref_));
}

LineDelay
DelayModel::repeatedLineDelay(double wire_length,
                              double temperature) const
{
    if (wire_length <= 0.0)
        fatal("DelayModel: wire length %g must be positive",
              wire_length);

    // Sizing frozen at the design point.
    RepeaterDesign design = RepeaterModel(tech_).design(wire_length);
    const double k = design.count_k_exact;
    const double h = design.size_h;

    // Per-segment loads at the operating temperature.
    const double seg_len = wire_length / k;
    const double r_seg = rWireAt(temperature) * seg_len;
    const double c_seg = tech_.cIntPerMetre() * seg_len;
    const double r_drv = tech_.r0 / h;
    const double c_gate = tech_.c0 * h;

    // Bakoglu's two-term Elmore delay per repeated segment:
    // 0.7 R_drv (C_seg + C_gate) + R_seg (0.4 C_seg + 0.7 C_gate).
    const double seg_delay = 0.7 * r_drv * (c_seg + c_gate) +
        r_seg * (0.4 * c_seg + 0.7 * c_gate);

    LineDelay out;
    out.total = k * seg_delay;
    out.r_wire = rWireAt(temperature);
    out.repeater_count = k;
    out.repeater_size = h;
    return out;
}

double
DelayModel::delayDegradation(double wire_length,
                             double temperature) const
{
    double ref = repeatedLineDelay(wire_length, t_ref_).total;
    double hot = repeatedLineDelay(wire_length, temperature).total;
    return hot / ref - 1.0;
}

} // namespace nanobus
