#include "tech/delay.hh"

#include <cmath>

#include "tech/repeater.hh"
#include "util/contracts.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace nanobus {

DelayModel::DelayModel(const TechnologyNode &tech,
                       Kelvin reference_temperature)
    : tech_(tech), t_ref_(reference_temperature)
{
    if (t_ref_.raw() <= 0.0)
        fatal("DelayModel: reference temperature %g K must be "
              "positive", t_ref_.raw());
}

OhmsPerMeter
DelayModel::rWireAt(Kelvin temperature) const
{
    return tech_.r_wire *
        (1.0 + units::tcr_copper * (temperature - t_ref_).raw());
}

LineDelay
DelayModel::repeatedLineDelay(Meters wire_length,
                              Kelvin temperature) const
{
    return loadedLineDelay(wire_length, Farads{}, temperature);
}

LineDelay
DelayModel::loadedLineDelay(Meters wire_length, Farads receiver_load,
                            Kelvin temperature) const
{
    if (wire_length.raw() <= 0.0)
        fatal("DelayModel: wire length %g must be positive",
              wire_length.raw());
    if (receiver_load.raw() < 0.0)
        fatal("DelayModel: receiver load %g F must be non-negative",
              receiver_load.raw());

    // Sizing frozen at the design point.
    RepeaterDesign design = RepeaterModel(tech_).design(wire_length);
    const double k = design.count_k_exact;
    const double h = design.size_h;

    // Per-segment loads at the operating temperature; each product
    // composes to the dimension the Elmore form expects.
    const Meters seg_len = wire_length / k;
    const Ohms r_seg = rWireAt(temperature) * seg_len;
    const Farads c_seg = tech_.cIntPerMetre() * seg_len;
    const Ohms r_drv = tech_.r0 / h;
    const Farads c_gate = tech_.c0 * h;

    // Bakoglu's two-term Elmore delay per repeated segment:
    // 0.7 R_drv (C_seg + C_gate) + R_seg (0.4 C_seg + 0.7 C_gate).
    const Seconds seg_delay = 0.7 * (r_drv * (c_seg + c_gate)) +
        r_seg * (0.4 * c_seg + 0.7 * c_gate);

    LineDelay out;
    out.total = k * seg_delay;
    // The receiver load charges through the last repeater and the
    // last wire segment.
    out.total += 0.7 * ((r_drv + r_seg) * receiver_load);
    out.r_wire = rWireAt(temperature);
    out.repeater_count = k;
    out.repeater_size = h;
    NANOBUS_ENSURE(out.total.raw() > 0.0,
                   "line delay must be positive");
    return out;
}

double
DelayModel::delayDegradation(Meters wire_length,
                             Kelvin temperature) const
{
    Seconds ref = repeatedLineDelay(wire_length, t_ref_).total;
    Seconds hot = repeatedLineDelay(wire_length, temperature).total;
    return hot / ref - 1.0;
}

} // namespace nanobus
