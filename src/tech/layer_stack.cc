#include "tech/layer_stack.hh"

#include "util/logging.hh"

namespace nanobus {

MetalLayerStack::MetalLayerStack(const TechnologyNode &tech,
                                 double taper, double coverage)
{
    if (taper <= 0.0 || taper > 1.0)
        fatal("MetalLayerStack: taper %g outside (0, 1]", taper);
    if (coverage <= 0.0 || coverage > 1.0)
        fatal("MetalLayerStack: coverage %g outside (0, 1]", coverage);

    const unsigned n = tech.metal_layers;
    layers_.reserve(n);
    for (unsigned i = 1; i <= n; ++i) {
        // Linear interpolation from `taper` at the bottom layer to
        // 1.0 at the top layer (taper == 1 keeps everything uniform).
        double frac = n == 1
            ? 1.0
            : static_cast<double>(i - 1) / static_cast<double>(n - 1);
        double scale = taper + (1.0 - taper) * frac;

        MetalLayer layer;
        layer.index = i;
        layer.width = tech.wire_width * scale;
        layer.spacing = tech.spacing() * scale;
        layer.thickness = tech.wire_thickness * scale;
        layer.ild_height = tech.ild_height * scale;
        layer.k_ild = tech.k_ild;
        layer.coverage = coverage;
        layers_.push_back(layer);
    }
}

const MetalLayer &
MetalLayerStack::layer(size_t i) const
{
    if (i >= layers_.size())
        panic("MetalLayerStack::layer: index %zu out of %zu",
              i, layers_.size());
    return layers_[i];
}

} // namespace nanobus
