#include "tech/repeater.hh"

#include <cmath>

#include "util/contracts.hh"
#include "util/logging.hh"

namespace nanobus {

RepeaterModel::RepeaterModel(const TechnologyNode &tech, bool enabled)
    : tech_(tech), enabled_(enabled)
{
}

RepeaterDesign
RepeaterModel::design(Meters wire_length) const
{
    if (wire_length.raw() <= 0.0)
        fatal("RepeaterModel::design: wire length %g must be positive",
              wire_length.raw());

    RepeaterDesign d;
    if (!enabled_)
        return d;

    // Totals over the full line; the dimensions compose to F and ohm.
    const Farads c_int = tech_.cIntPerMetre() * wire_length;
    const Ohms r_int = tech_.r_wire * wire_length;

    // Eq 1: h = sqrt(R0 Cint / (C0 Rint)); the per-length factors
    // cancel so h is independent of wire length (and the quotient is
    // dimensionless by construction).
    d.size_h = std::sqrt((tech_.r0 * c_int) / (tech_.c0 * r_int));

    // Eq 2: k = sqrt(0.4 Rint Cint / (0.7 C0 R0)); scales linearly
    // with wire length.
    d.count_k_exact = std::sqrt(0.4 * (r_int * c_int) /
                                (0.7 * (tech_.c0 * tech_.r0)));
    d.count_k = static_cast<unsigned>(std::ceil(d.count_k_exact));
    if (d.count_k == 0)
        d.count_k = 1;

    d.total_capacitance = d.size_h * d.count_k_exact * tech_.c0;
    NANOBUS_ENSURE(d.total_capacitance.raw() > 0.0,
                   "repeater capacitance must be positive");
    return d;
}

Farads
RepeaterModel::totalCapacitance(Meters wire_length) const
{
    if (!enabled_)
        return Farads{};
    return capacitanceRatio() * tech_.cIntPerMetre() * wire_length;
}

double
RepeaterModel::capacitanceRatio()
{
    return std::sqrt(0.4 / 0.7);
}

} // namespace nanobus
