/**
 * @file
 * Versioned, CRC-guarded snapshot containers for checkpoint/resume.
 *
 * Long sweeps (the paper replays 300M-cycle traces; the ROADMAP's
 * fleet-scale direction multiplies that by thousands of shards) must
 * survive process death. The persistence layer here is deliberately
 * dumb and explicit:
 *
 *  - SnapshotWriter/SnapshotReader serialize scalars and byte runs
 *    in a fixed little-endian wire order, independent of host
 *    endianness or struct layout, so a snapshot is bit-stable across
 *    toolchains. Doubles travel as their IEEE-754 bit patterns —
 *    restore is bit-identical, never a parse/print round-trip.
 *  - saveSnapshotFile/loadSnapshotFile wrap a payload in a "NBCK"
 *    magic + format version + length + CRC32 header and publish it
 *    through writeFileAtomic, so a crash mid-checkpoint leaves the
 *    previous checkpoint intact and a torn or bit-rotted file is
 *    rejected with a typed Error instead of resuming garbage.
 *
 * All failures surface as Result/Status per docs/ROBUSTNESS.md: a
 * corrupt checkpoint degrades to a cold start, it never fatal()s.
 */

#ifndef NANOBUS_UTIL_CHECKPOINT_HH
#define NANOBUS_UTIL_CHECKPOINT_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/result.hh"

namespace nanobus {

/** Snapshot container format version (bump on wire changes).
 *  v2: transition-kernel tag in the bus identity guard + the packed
 *  kernel's integer count payload (fabric/bus_snapshot.cc). */
constexpr uint32_t kSnapshotFormatVersion = 2;

/** CRC-32 (IEEE 802.3, reflected) of `size` bytes, continuing from
 *  `seed` (pass the previous return value to checksum in chunks). */
uint32_t crc32(const void *data, size_t size, uint32_t seed = 0);

/** Serializes scalars into a little-endian byte buffer. */
class SnapshotWriter
{
  public:
    void putU32(uint32_t value);
    void putU64(uint64_t value);
    /** IEEE-754 bit pattern; restores bit-identically. */
    void putF64(double value);
    void putBool(bool value) { putU32(value ? 1u : 0u); }
    /** Length-prefixed byte run. */
    void putString(const std::string &value);

    const std::string &buffer() const { return buffer_; }

  private:
    std::string buffer_;
};

/**
 * Bounds-checked reader over a SnapshotWriter buffer. Every get
 * returns a Status; reading past the end or mismatched field shapes
 * surface as ErrorCode::ParseError (the snapshot is structurally
 * damaged, not merely unreadable).
 */
class SnapshotReader
{
  public:
    explicit SnapshotReader(const std::string &buffer)
        : buffer_(buffer)
    {
    }

    [[nodiscard]] Status getU32(uint32_t &out);
    [[nodiscard]] Status getU64(uint64_t &out);
    [[nodiscard]] Status getF64(double &out);
    [[nodiscard]] Status getBool(bool &out);
    [[nodiscard]] Status getString(std::string &out);

    /** True when every byte has been consumed. */
    bool atEnd() const { return offset_ == buffer_.size(); }

    /** Bytes not yet consumed. */
    size_t remaining() const { return buffer_.size() - offset_; }

  private:
    [[nodiscard]] Status take(size_t count, const char *&out);

    const std::string &buffer_;
    size_t offset_ = 0;
};

/**
 * Atomically write `payload` to `path` inside the versioned,
 * CRC-guarded container. IoError on filesystem trouble.
 */
[[nodiscard]] Status saveSnapshotFile(const std::string &path,
                                      const std::string &payload);

/**
 * Read and validate a container written by saveSnapshotFile,
 * returning the payload. Errors: IoError when the file cannot be
 * read; ParseError when the magic, version, length, or CRC do not
 * check out (the caller should discard the checkpoint and cold-start
 * rather than trust any of its bytes).
 */
Result<std::string> loadSnapshotFile(const std::string &path);

} // namespace nanobus

#endif // NANOBUS_UTIL_CHECKPOINT_HH
