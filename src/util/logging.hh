/**
 * @file
 * Logging and error-reporting primitives.
 *
 * Follows the gem5 convention: fatal() terminates on *user* error (bad
 * configuration, invalid arguments), panic() terminates on *internal*
 * error (a nanobus bug — a broken invariant that should never trigger
 * regardless of user input). warn()/inform() report conditions without
 * stopping the program.
 */

#ifndef NANOBUS_UTIL_LOGGING_HH
#define NANOBUS_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace nanobus {

/** Severity of a log message routed through logMessage(). */
enum class LogLevel {
    Inform,
    Warn,
    Fatal,
    Panic,
};

/**
 * Hook type invoked for every log message. Tests install a hook to
 * assert on emitted diagnostics; the default hook writes to stderr.
 */
using LogHook = void (*)(LogLevel level, const std::string &message);

/**
 * Install a log hook, returning the previously installed one.
 * Passing nullptr restores the default stderr hook.
 */
LogHook setLogHook(LogHook hook);

/**
 * Controls whether fatal()/panic() throw FatalError instead of
 * terminating the process. Tests enable this to assert on error paths.
 */
void setAbortOnError(bool abort_on_error);

/** Exception thrown by fatal()/panic() when abort-on-error is disabled. */
struct FatalError
{
    /** Severity that raised the error. */
    LogLevel level;
    /** Rendered message text. */
    std::string message;
};

/**
 * Report an unrecoverable user error (bad config, bad input) and exit
 * with status 1 (or throw FatalError under setAbortOnError(false)).
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation (a nanobus bug) and abort
 * (or throw FatalError under setAbortOnError(false)).
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operational status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace nanobus

#endif // NANOBUS_UTIL_LOGGING_HH
