/**
 * @file
 * Checked-error primitives: Result<T> and Status.
 *
 * The gem5-style fatal()/panic() calls in logging.hh terminate the
 * process, which is the right contract for configuration errors and
 * broken invariants but the wrong one for the solver stack: a batch
 * sweep over millions of trace segments must survive one singular
 * extraction or one malformed trace line. The `try*` entry points of
 * the linear-algebra, ODE, extraction, and trace layers therefore
 * return Result<T>/Status values carrying a typed Error, and the
 * caller decides whether to degrade, retry, or escalate to fatal().
 *
 * docs/ROBUSTNESS.md describes the full error taxonomy.
 */

#ifndef NANOBUS_UTIL_RESULT_HH
#define NANOBUS_UTIL_RESULT_HH

#include <optional>
#include <string>
#include <utility>

#include "util/logging.hh"

namespace nanobus {

/** Machine-readable classification of a recoverable failure. */
enum class ErrorCode {
    /** Caller passed an argument the operation cannot act on. */
    InvalidArgument,
    /** Matrix is singular to working precision (scaled pivot test). */
    SingularMatrix,
    /** Operation succeeded but the result is numerically untrustworthy. */
    IllConditioned,
    /** A NaN or infinity appeared where a finite value is required. */
    NonFinite,
    /** Underlying stream or file operation failed. */
    IoError,
    /** Input text or bytes do not match the expected format. */
    ParseError,
    /** A retry/skip budget was exhausted before the operation succeeded. */
    BudgetExhausted,
    /** Failure forced by the fault-injection harness (tests only). */
    FaultInjected,
    /** Thermal solution exceeded physical bounds (see ThermalFault). */
    ThermalRunaway,
};

/** Stable short name of an error code (for logs and reports). */
constexpr const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::InvalidArgument: return "invalid-argument";
      case ErrorCode::SingularMatrix:  return "singular-matrix";
      case ErrorCode::IllConditioned:  return "ill-conditioned";
      case ErrorCode::NonFinite:       return "non-finite";
      case ErrorCode::IoError:         return "io-error";
      case ErrorCode::ParseError:      return "parse-error";
      case ErrorCode::BudgetExhausted: return "budget-exhausted";
      case ErrorCode::FaultInjected:   return "fault-injected";
      case ErrorCode::ThermalRunaway:  return "thermal-runaway";
    }
    return "unknown";
}

/** A typed, recoverable failure description. */
struct Error
{
    ErrorCode code = ErrorCode::InvalidArgument;
    std::string message;

    /** "code: message" rendering for logs. */
    std::string describe() const
    {
        return std::string(errorCodeName(code)) + ": " + message;
    }
};

/**
 * Either a T or an Error. Accessing the wrong arm is a programming
 * error and panics; query ok() (or use the bool conversion) first.
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    /** Success. */
    Result(T value) : value_(std::move(value)) {}

    /** Failure. */
    Result(Error error) : error_(std::move(error)) {}

    /** Failure, constructed in place. */
    static Result
    failure(ErrorCode code, std::string message)
    {
        return Result(Error{code, std::move(message)});
    }

    /** True when the operation produced a value. */
    bool ok() const { return value_.has_value(); }

    explicit operator bool() const { return ok(); }

    /** The value; panics if this result holds an error. */
    const T &value() const { requireOk(); return *value_; }
    T &value() { requireOk(); return *value_; }

    /** Move the value out; panics if this result holds an error. */
    T takeValue() { requireOk(); return std::move(*value_); }

    /** The value, or `fallback` if this result holds an error. */
    T valueOr(T fallback) const
    {
        return ok() ? *value_ : std::move(fallback);
    }

    /** The error; panics if this result holds a value. */
    const Error &error() const
    {
        if (ok())
            panic("Result::error: result holds a value");
        return *error_;
    }

  private:
    void requireOk() const
    {
        if (!ok())
            panic("Result::value: unchecked access to failed result "
                  "(%s)", error_->describe().c_str());
    }

    std::optional<T> value_;
    std::optional<Error> error_;
};

/** Result with no payload: success, or a typed Error. */
class [[nodiscard]] Status
{
  public:
    /** Success. */
    Status() = default;

    /** Failure. */
    Status(Error error) : error_(std::move(error)) {}

    /** Failure, constructed in place. */
    static Status
    failure(ErrorCode code, std::string message)
    {
        return Status(Error{code, std::move(message)});
    }

    /** True when the operation succeeded. */
    bool ok() const { return !error_.has_value(); }

    explicit operator bool() const { return ok(); }

    /** The error; panics if the status is ok. */
    const Error &error() const
    {
        if (ok())
            panic("Status::error: status is ok");
        return *error_;
    }

  private:
    std::optional<Error> error_;
};

} // namespace nanobus

#endif // NANOBUS_UTIL_RESULT_HH
