/**
 * @file
 * Classical fourth-order Runge-Kutta integration for small ODE systems.
 *
 * The paper solves the thermal-RC network equations (Eqs 3-4) with a
 * fourth-order Runge-Kutta method; this is the shared implementation.
 * The solver owns its stage workspace so repeated stepping performs no
 * allocation.
 */

#ifndef NANOBUS_UTIL_ODE_HH
#define NANOBUS_UTIL_ODE_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "util/result.hh"

namespace nanobus {

/**
 * Outcome of a checked integration (Rk4Solver::integrateChecked).
 *
 * `ok` is false only when the retry budget was exhausted without
 * producing a finite state; the state vector is then left at the
 * last finite value reached and `completed_time` tells how far the
 * integration got.
 */
struct IntegrationReport
{
    /** Whole duration integrated with a finite state throughout. */
    bool ok = true;
    /** Accepted RK4 steps. */
    size_t steps = 0;
    /** Step halvings after a non-finite state was detected. */
    size_t retries = 0;
    /** Largest |dy_i/dt| observed at an accepted step start — a
     *  residual proxy: large values flag stiffness trouble even when
     *  the state stays finite. */
    double max_derivative = 0.0;
    /** Simulated time actually advanced [same unit as duration]. */
    double completed_time = 0.0;
    /** Failure details when !ok. */
    Error error;
};

/**
 * Fixed-step RK4 solver for dy/dt = f(t, y).
 *
 * The derivative callback fills `dydt` (already sized) from (t, y).
 */
class Rk4Solver
{
  public:
    /** Derivative function signature. */
    using Derivative = std::function<
        void(double t, const std::vector<double> &y,
             std::vector<double> &dydt)>;

    /** @param dimension Size of the state vector. */
    explicit Rk4Solver(size_t dimension);

    /** State vector dimension. */
    size_t dimension() const { return k1_.size(); }

    /**
     * Advance `y` in place by one RK4 step of width dt.
     *
     * @param f Derivative function.
     * @param t Current time.
     * @param dt Step width.
     * @param y State; updated to the value at t + dt.
     */
    void step(const Derivative &f, double t, double dt,
              std::vector<double> &y);

    /**
     * Advance `y` from t to t + duration using ceil(duration/max_dt)
     * equal RK4 steps. Returns the number of steps taken.
     */
    size_t integrate(const Derivative &f, double t, double duration,
                     double max_dt, std::vector<double> &y);

    /**
     * Like integrate(), but numerically guarded: after every step the
     * state is checked for NaN/inf; a non-finite state rolls the step
     * back and retries with half the width, up to `max_retries`
     * halvings across the whole call. Invalid arguments and
     * non-finite initial states are reported as errors rather than
     * panicking, so a batch sweep can survive one bad segment. The
     * fault-injection site FaultSite::Rk4Step poisons one step to
     * exercise the recovery path deterministically.
     */
    [[nodiscard]] IntegrationReport integrateChecked(
        const Derivative &f, double t, double duration, double max_dt,
        std::vector<double> &y, size_t max_retries = 12);

  private:
    std::vector<double> k1_, k2_, k3_, k4_, scratch_;
    std::vector<double> backup_;
};

} // namespace nanobus

#endif // NANOBUS_UTIL_ODE_HH
