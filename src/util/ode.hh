/**
 * @file
 * ODE integrators for the thermal solver stack.
 *
 * Two families live here:
 *
 *  - Rk4Solver — classical fourth-order Runge-Kutta for general
 *    dy/dt = f(t, y), the method the paper uses for Eqs 3-4. Being
 *    explicit, its stable step is bounded by the *stiffest* time
 *    constant in the system, however short the caller's horizon.
 *
 *  - ImplicitLinearSolver — backward-Euler and trapezoidal
 *    (Crank-Nicolson) one-step methods for *linear* systems
 *    dy/dt = A y + b. Both are A-stable: the step width is chosen
 *    for accuracy (from the interval length), not stability, so a
 *    stiff network can be stepped in a handful of solves per
 *    interval. The caller pre-factors the stepping operator
 *    (I - c·dt·A) once and reuses it across every step that shares
 *    dt — for the thermal network that is one factorization per
 *    interval length (docs/THERMAL.md).
 *
 * The linear algebra is injected as a template parameter (a Factor
 * providing solve()/trySolve(), e.g. la's BandedFactorization), so
 * this layer-0 header depends on nothing above util.
 *
 * Both families own their workspace: repeated stepping performs no
 * allocation, and the derivative callback is a borrowed FunctionRef
 * rather than an owning std::function.
 */

#ifndef NANOBUS_UTIL_ODE_HH
#define NANOBUS_UTIL_ODE_HH

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "util/function_ref.hh"
#include "util/logging.hh"
#include "util/result.hh"

namespace nanobus {

/**
 * Outcome of a checked integration (Rk4Solver::integrateChecked and
 * ImplicitLinearSolver::integrateChecked share this taxonomy).
 *
 * `ok` is false only when no finite state could be produced (for RK4,
 * after exhausting the retry budget; for the implicit methods, when a
 * linear solve fails or returns non-finite values); the state vector
 * is then left at the last finite value reached and `completed_time`
 * tells how far the integration got.
 */
struct IntegrationReport
{
    /** Whole duration integrated with a finite state throughout. */
    bool ok = true;
    /** Accepted steps. */
    size_t steps = 0;
    /** Step halvings after a non-finite state was detected (RK4
     *  only; the A-stable implicit methods never retry). */
    size_t retries = 0;
    /** Largest |dy_i/dt| observed at an accepted step start — a
     *  residual proxy: large values flag stiffness trouble even when
     *  the state stays finite. */
    double max_derivative = 0.0;
    /** Simulated time actually advanced [same unit as duration]. */
    double completed_time = 0.0;
    /** Failure details when !ok. */
    Error error;
};

/**
 * Fixed-step RK4 solver for dy/dt = f(t, y).
 *
 * The derivative callback fills `dydt` (already sized) from (t, y).
 */
class Rk4Solver
{
  public:
    /**
     * Derivative function signature. A borrowed FunctionRef: the
     * integrator never outlives the call it is passed to, so the
     * hot loop pays no std::function allocation or double
     * indirection. Call sites keep passing lambdas unchanged.
     */
    using Derivative = FunctionRef<
        void(double t, const std::vector<double> &y,
             std::vector<double> &dydt)>;

    /** @param dimension Size of the state vector. */
    explicit Rk4Solver(size_t dimension);

    /** State vector dimension. */
    size_t dimension() const { return k1_.size(); }

    /**
     * Advance `y` in place by one RK4 step of width dt.
     *
     * @param f Derivative function.
     * @param t Current time.
     * @param dt Step width.
     * @param y State; updated to the value at t + dt.
     */
    void step(const Derivative &f, double t, double dt,
              std::vector<double> &y);

    /**
     * Advance `y` from t to t + duration using ceil(duration/max_dt)
     * equal RK4 steps. Returns the number of steps taken.
     */
    size_t integrate(const Derivative &f, double t, double duration,
                     double max_dt, std::vector<double> &y);

    /**
     * Like integrate(), but numerically guarded: after every step the
     * state is checked for NaN/inf; a non-finite state rolls the step
     * back and retries with half the width, up to `max_retries`
     * halvings across the whole call. Invalid arguments and
     * non-finite initial states are reported as errors rather than
     * panicking, so a batch sweep can survive one bad segment. The
     * fault-injection site FaultSite::Rk4Step poisons one step to
     * exercise the recovery path deterministically.
     */
    [[nodiscard]] IntegrationReport integrateChecked(
        const Derivative &f, double t, double duration, double max_dt,
        std::vector<double> &y, size_t max_retries = 12);

  private:
    std::vector<double> k1_, k2_, k3_, k4_, scratch_;
    std::vector<double> backup_;
};

/** One-step implicit method for linear systems (A-stable). */
enum class ImplicitMethod {
    /** y_{k+1} = y_k + dt (A y_{k+1} + b). First order, L-stable:
     *  stiff transients are damped, never aliased — the robust
     *  choice when dt spans many fast time constants. */
    BackwardEuler,
    /** Crank-Nicolson: trapezoidal average of both endpoints.
     *  Second order, A-stable but not L-stable (stiff modes decay as
     *  (2-z)/(2+z) -> -1, so a step spanning many fast time
     *  constants *aliases* them instead of damping them). The
     *  stepper therefore applies Rannacher startup: the first step
     *  of every horizon is taken as two backward-Euler half-steps —
     *  which reuse the very same factored operator I - (dt/2) A —
     *  crushing stiff content by ~1/z^2 before the trapezoidal steps
     *  take over. Second-order global accuracy is preserved. */
    Trapezoidal,
};

/** Readable method name ("backward-euler" / "trapezoidal"). */
constexpr const char *
implicitMethodName(ImplicitMethod method)
{
    return method == ImplicitMethod::BackwardEuler ? "backward-euler"
                                                   : "trapezoidal";
}

/**
 * Coefficient c of the stepping operator M = I - c·dt·A the caller
 * must factor for a given method (1 for backward Euler, 1/2 for
 * trapezoidal).
 */
constexpr double
implicitOperatorCoefficient(ImplicitMethod method)
{
    return method == ImplicitMethod::BackwardEuler ? 1.0 : 0.5;
}

/**
 * Implicit stepper for the constant-coefficient linear system
 * dy/dt = A y + b over one horizon of equal steps.
 *
 * The caller owns the structure: A is applied through a borrowed
 * matvec callback and the stepping operator M = I - c·dt·A
 * (c = implicitOperatorCoefficient) arrives *pre-factored* as a
 * `Factor` — any type with `solve(const std::vector<double>&)` and
 * `trySolve(...)` returning Result (la's BandedFactorization or
 * LuFactorization both qualify). Factoring once per (A, dt) pair and
 * reusing it across steps — and across calls — is the entire point:
 * each step then costs one O(band) solve.
 *
 * Contract: `factor` MUST be the factorization of I - c·dt·A for
 * exactly the `dt` and `method` passed alongside it; the stepper has
 * no way to verify this. ThermalNetwork derives both from the same
 * cached assembly (src/thermal/network.cc).
 */
template <class Factor>
class ImplicitLinearSolver
{
  public:
    /** Matvec callback: fills `ay` (already sized) with A·y. */
    using ApplyMatrix = FunctionRef<void(
        const std::vector<double> &y, std::vector<double> &ay)>;

    /** @param dimension Size of the state vector. */
    explicit ImplicitLinearSolver(size_t dimension)
        : rhs_(dimension), ay_(dimension)
    {
    }

    /** State vector dimension. */
    size_t dimension() const { return rhs_.size(); }

    /**
     * Advance `y` in place by `steps` equal steps of width dt.
     *
     * Backward Euler solves M y_{k+1} = y_k + dt b; trapezoidal
     * solves M y_{k+1} = y_k + (dt/2) A y_k + dt b, taking its first
     * step as two backward-Euler half-steps (Rannacher startup; see
     * ImplicitMethod::Trapezoidal) through the same operator. Both
     * methods are exactly fixed-point-preserving: at the steady
     * state A y + b = 0 the iteration is stationary regardless of dt.
     */
    void integrate(ImplicitMethod method, const Factor &factor,
                   ApplyMatrix apply, const std::vector<double> &b,
                   double dt, size_t steps, std::vector<double> &y)
    {
        IntegrationReport report =
            run<false>(method, factor, apply, b, dt, steps, y);
        if (!report.ok)
            fatal("ImplicitLinearSolver: %s",
                  report.error.message.c_str());
    }

    /**
     * Checked integrate(): linear-solve failures and non-finite
     * states are reported through the IntegrationReport taxonomy
     * instead of terminating, leaving `y` at the last finite state
     * reached. There is no step-halving (`retries` stays 0): both
     * methods are A-stable, so a failure here means the operator or
     * the inputs are bad, and a narrower step would not help.
     */
    [[nodiscard]] IntegrationReport integrateChecked(
        ImplicitMethod method, const Factor &factor, ApplyMatrix apply,
        const std::vector<double> &b, double dt, size_t steps,
        std::vector<double> &y)
    {
        return run<true>(method, factor, apply, b, dt, steps, y);
    }

  private:
    template <bool Checked>
    IntegrationReport run(ImplicitMethod method, const Factor &factor,
                          ApplyMatrix apply,
                          const std::vector<double> &b, double dt,
                          size_t steps, std::vector<double> &y)
    {
        IntegrationReport report;
        const size_t n = dimension();
        if (y.size() != n || b.size() != n) {
            report.ok = false;
            report.error = Error{
                ErrorCode::InvalidArgument,
                "state/forcing size != dimension " +
                    std::to_string(n)};
            return report;
        }
        if (!(dt > 0.0) || !std::isfinite(dt)) {
            report.ok = false;
            report.error = Error{ErrorCode::InvalidArgument,
                                 "dt must be positive and finite"};
            return report;
        }
        const bool trapezoidal = method == ImplicitMethod::Trapezoidal;

        // One sub-step: build the right-hand side for an effective
        // step h (h = dt for full steps, dt/2 for the Rannacher
        // halves, where `cn` selects the trapezoidal average) and
        // solve through the pre-factored operator.
        auto substep = [&](double h, bool cn) -> bool {
            apply(y, ay_);
            for (size_t i = 0; i < n; ++i) {
                const double dydt = ay_[i] + b[i];
                report.max_derivative = std::max(
                    report.max_derivative, std::fabs(dydt));
                rhs_[i] = cn ? y[i] + 0.5 * h * ay_[i] + h * b[i]
                             : y[i] + h * b[i];
            }
            if constexpr (Checked) {
                Result<std::vector<double>> next =
                    factor.trySolve(rhs_);
                if (!next.ok()) {
                    report.ok = false;
                    report.error = next.error();
                    return false;
                }
                y = next.value();
            } else {
                y = factor.solve(rhs_);
            }
            report.completed_time += h;
            return true;
        };

        size_t k = 0;
        if (trapezoidal && steps > 0) {
            // Rannacher startup (see ImplicitMethod::Trapezoidal):
            // the first step is two backward-Euler half-steps; the
            // operator of BE at dt/2 is I - (dt/2) A — identical to
            // the trapezoidal operator, so `factor` is reused as-is.
            if (!substep(0.5 * dt, false) || !substep(0.5 * dt, false))
                return report;
            ++report.steps;
            k = 1;
        }
        for (; k < steps; ++k) {
            if (!substep(dt, trapezoidal))
                return report;
            ++report.steps;
        }
        return report;
    }

    std::vector<double> rhs_;
    std::vector<double> ay_;
};

} // namespace nanobus

#endif // NANOBUS_UTIL_ODE_HH
