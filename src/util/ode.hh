/**
 * @file
 * Classical fourth-order Runge-Kutta integration for small ODE systems.
 *
 * The paper solves the thermal-RC network equations (Eqs 3-4) with a
 * fourth-order Runge-Kutta method; this is the shared implementation.
 * The solver owns its stage workspace so repeated stepping performs no
 * allocation.
 */

#ifndef NANOBUS_UTIL_ODE_HH
#define NANOBUS_UTIL_ODE_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace nanobus {

/**
 * Fixed-step RK4 solver for dy/dt = f(t, y).
 *
 * The derivative callback fills `dydt` (already sized) from (t, y).
 */
class Rk4Solver
{
  public:
    /** Derivative function signature. */
    using Derivative = std::function<
        void(double t, const std::vector<double> &y,
             std::vector<double> &dydt)>;

    /** @param dimension Size of the state vector. */
    explicit Rk4Solver(size_t dimension);

    /** State vector dimension. */
    size_t dimension() const { return k1_.size(); }

    /**
     * Advance `y` in place by one RK4 step of width dt.
     *
     * @param f Derivative function.
     * @param t Current time.
     * @param dt Step width.
     * @param y State; updated to the value at t + dt.
     */
    void step(const Derivative &f, double t, double dt,
              std::vector<double> &y);

    /**
     * Advance `y` from t to t + duration using ceil(duration/max_dt)
     * equal RK4 steps. Returns the number of steps taken.
     */
    size_t integrate(const Derivative &f, double t, double duration,
                     double max_dt, std::vector<double> &y);

  private:
    std::vector<double> k1_, k2_, k3_, k4_, scratch_;
};

} // namespace nanobus

#endif // NANOBUS_UTIL_ODE_HH
