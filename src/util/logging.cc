#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace nanobus {

namespace {

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

void
defaultHook(LogLevel level, const std::string &message)
{
    std::fprintf(stderr, "%s: %s\n", levelName(level), message.c_str());
}

LogHook current_hook = defaultHook;
bool abort_on_error = true;

std::string
renderMessage(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data());
}

} // anonymous namespace

LogHook
setLogHook(LogHook hook)
{
    LogHook previous = current_hook;
    current_hook = hook ? hook : defaultHook;
    return previous == defaultHook ? nullptr : previous;
}

void
setAbortOnError(bool enable)
{
    abort_on_error = enable;
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string message = renderMessage(fmt, args);
    va_end(args);
    current_hook(LogLevel::Fatal, message);
    if (abort_on_error)
        std::exit(1);
    throw FatalError{LogLevel::Fatal, message};
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string message = renderMessage(fmt, args);
    va_end(args);
    current_hook(LogLevel::Panic, message);
    if (abort_on_error)
        std::abort();
    throw FatalError{LogLevel::Panic, message};
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string message = renderMessage(fmt, args);
    va_end(args);
    current_hook(LogLevel::Warn, message);
}

void
inform(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string message = renderMessage(fmt, args);
    va_end(args);
    current_hook(LogLevel::Inform, message);
}

} // namespace nanobus
