/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Simulation reproducibility requires a generator whose sequence is
 * stable across standard libraries and platforms, so nanobus carries its
 * own xoshiro256** implementation (Blackman & Vigna) seeded through
 * SplitMix64, rather than relying on std::mt19937 distributions whose
 * std:: wrappers are implementation-defined.
 */

#ifndef NANOBUS_UTIL_RANDOM_HH
#define NANOBUS_UTIL_RANDOM_HH

#include <cstdint>

namespace nanobus {

/**
 * xoshiro256** PRNG with distribution helpers.
 *
 * All helpers are implemented on top of next() with fixed algorithms so
 * that a given seed yields the same stream everywhere.
 */
class Rng
{
  public:
    /** Construct with a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit output. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, bound) using rejection sampling. */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t between(int64_t lo, int64_t hi);

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /** Standard normal variate (Box-Muller, deterministic pairing). */
    double normal();

    /** Normal variate with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Geometric variate: number of failures before first success with
     * success probability p per trial. Returns values >= 0.
     */
    uint64_t geometric(double p);

    /** Exponential variate with the given mean. */
    double exponential(double mean);

    /**
     * Pareto-like discrete jump magnitude in [1, max_value], with tail
     * exponent alpha (> 0). Used for branch displacement modeling.
     */
    uint64_t paretoJump(double alpha, uint64_t max_value);

  private:
    uint64_t state_[4];
    bool have_spare_normal_ = false;
    double spare_normal_ = 0.0;
};

} // namespace nanobus

#endif // NANOBUS_UTIL_RANDOM_HH
