#include "util/faultinject.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/random.hh"

namespace nanobus {

std::atomic<bool> FaultInjector::active_{false};

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

FaultInjector::Trigger &
FaultInjector::trigger(FaultSite site)
{
    auto index = static_cast<unsigned>(site);
    if (index >= kNumFaultSites)
        panic("FaultInjector: bad fault site %u", index);
    return triggers_[index];
}

const FaultInjector::Trigger &
FaultInjector::trigger(FaultSite site) const
{
    return const_cast<FaultInjector *>(this)->trigger(site);
}

void
FaultInjector::refreshActive()
{
    bool any = false;
    for (const Trigger &t : triggers_)
        any = any || t.armed;
    active_.store(any, std::memory_order_relaxed);
}

void
FaultInjector::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Trigger &t : triggers_)
        t = Trigger();
    active_.store(false, std::memory_order_relaxed);
}

void
FaultInjector::armCallFault(FaultSite site, uint64_t nth,
                            uint64_t repeat_every)
{
    if (nth == 0)
        panic("FaultInjector: trigger ordinal is 1-based");
    std::lock_guard<std::mutex> lock(mutex_);
    Trigger &t = trigger(site);
    t.armed = true;
    t.nth = nth;
    t.repeat = repeat_every;
    t.calls = 0;
    t.fired = 0;
    refreshActive();
}

void
FaultInjector::armTraceCorruption(uint64_t nth_line,
                                  uint64_t repeat_every)
{
    armCallFault(FaultSite::TraceLine, nth_line, repeat_every);
}

bool
FaultInjector::fireCallFault(FaultSite site)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Trigger &t = trigger(site);
    ++t.calls;
    if (!t.armed || t.calls < t.nth)
        return false;
    bool fires = t.calls == t.nth ||
        (t.repeat > 0 && (t.calls - t.nth) % t.repeat == 0);
    if (fires)
        ++t.fired;
    return fires;
}

bool
FaultInjector::corruptLine(std::string &line)
{
    if (!fireCallFault(FaultSite::TraceLine))
        return false;
    if (line.empty())
        return false;
    // The first character of a well-formed record is a cycle digit;
    // flipping bit 6 turns it into a letter (0x30-0x39 -> 0x70-0x79),
    // which no field parser accepts. Lower bits are no good: a
    // mid-line flip can land on a leading zero and leave the record
    // readable, and bit 4 maps '3' onto the '#' comment marker.
    line[0] ^= 0x40;
    return true;
}

uint64_t
FaultInjector::callCount(FaultSite site) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return trigger(site).calls;
}

uint64_t
FaultInjector::firedCount(FaultSite site) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return trigger(site).fired;
}

void
FaultInjector::perturbEntries(double *values, size_t count,
                              double relative_magnitude, uint64_t seed)
{
    if (count == 0)
        return;
    double scale = 0.0;
    for (size_t i = 0; i < count; ++i)
        scale = std::max(scale, std::fabs(values[i]));
    if (scale == 0.0)
        scale = 1.0;
    Rng rng(seed);
    for (size_t i = 0; i < count; ++i)
        values[i] += scale *
            rng.uniform(-relative_magnitude, relative_magnitude);
}

} // namespace nanobus
