#include "util/csv.hh"

#include <cinttypes>
#include <cstdio>

#include "util/logging.hh"

namespace nanobus {

namespace {

bool
needsQuoting(const std::string &value)
{
    return value.find_first_of(",\"\n\r") != std::string::npos;
}

std::string
quoted(const std::string &value)
{
    std::string out = "\"";
    for (char c : value) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // anonymous namespace

CsvWriter::CsvWriter(const std::string &path)
    : out_(path), path_(path)
{
    if (!out_)
        fatal("CsvWriter: cannot open '%s' for writing", path.c_str());
}

void
CsvWriter::header(const std::vector<std::string> &columns)
{
    row(columns);
}

void
CsvWriter::beginRow()
{
    if (row_open_)
        panic("CsvWriter: beginRow with a row already open");
    row_open_ = true;
    first_cell_ = true;
}

void
CsvWriter::cell(const std::string &value)
{
    emit(needsQuoting(value) ? quoted(value) : value);
}

void
CsvWriter::cell(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    emit(buf);
}

void
CsvWriter::cell(uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    emit(buf);
}

void
CsvWriter::endRow()
{
    if (!row_open_)
        panic("CsvWriter: endRow without beginRow");
    out_ << '\n';
    row_open_ = false;
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    beginRow();
    for (const auto &value : cells)
        cell(value);
    endRow();
}

void
CsvWriter::flush()
{
    out_.flush();
}

void
CsvWriter::emit(const std::string &raw)
{
    if (!row_open_)
        panic("CsvWriter: cell emitted outside a row");
    if (!first_cell_)
        out_ << ',';
    out_ << raw;
    first_cell_ = false;
}

} // namespace nanobus
