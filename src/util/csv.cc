#include "util/csv.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "util/atomicfile.hh"
#include "util/logging.hh"

namespace nanobus {

namespace {

bool
needsQuoting(const std::string &value)
{
    return value.find_first_of(",\"\n\r") != std::string::npos;
}

std::string
quoted(const std::string &value)
{
    std::string out = "\"";
    for (char c : value) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // anonymous namespace

CsvWriter::CsvWriter(const std::string &path)
    : path_(path)
{
    // Probe the staging path now so an unwritable destination fails
    // at construction; the probe is removed by the first flush's
    // rename (or explicitly here if no flush ever happens... the
    // next flush simply overwrites it).
    std::ofstream probe(atomicTempPath(path_),
                        std::ios::binary | std::ios::trunc);
    if (!probe)
        fatal("CsvWriter: cannot open '%s' for writing", path.c_str());
}

CsvWriter::~CsvWriter()
{
    if (dirty_)
        flush();
}

void
CsvWriter::header(const std::vector<std::string> &columns)
{
    row(columns);
}

void
CsvWriter::beginRow()
{
    if (row_open_)
        panic("CsvWriter: beginRow with a row already open");
    row_open_ = true;
    first_cell_ = true;
}

void
CsvWriter::cell(const std::string &value)
{
    emit(needsQuoting(value) ? quoted(value) : value);
}

void
CsvWriter::cell(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    emit(buf);
}

void
CsvWriter::cell(uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    emit(buf);
}

void
CsvWriter::endRow()
{
    if (!row_open_)
        panic("CsvWriter: endRow without beginRow");
    buffer_ += '\n';
    row_open_ = false;
    dirty_ = true;
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    beginRow();
    for (const auto &value : cells)
        cell(value);
    endRow();
}

void
CsvWriter::flush()
{
    Status status = writeFileAtomic(path_, buffer_);
    if (!status.ok())
        fatal("CsvWriter: %s", status.error().describe().c_str());
    dirty_ = false;
}

void
CsvWriter::emit(const std::string &raw)
{
    if (!row_open_)
        panic("CsvWriter: cell emitted outside a row");
    if (!first_cell_)
        buffer_ += ',';
    buffer_ += raw;
    first_cell_ = false;
}

} // namespace nanobus
