/**
 * @file
 * Physical constants and unit-conversion helpers.
 *
 * nanobus works in SI units throughout: metres, seconds, kelvin, joules,
 * watts, farads, ohms. Quantities that the literature quotes in scaled
 * units (pF/m, nm, MA/cm^2, ...) are converted at the boundary with the
 * helpers below so that no module ever mixes unit systems internally.
 */

#ifndef NANOBUS_UTIL_UNITS_HH
#define NANOBUS_UTIL_UNITS_HH

namespace nanobus {
namespace units {

/** Vacuum permittivity [F/m]. */
inline constexpr double epsilon0 = 8.8541878128e-12;

/** Resistivity of interconnect copper at operating temp [ohm * m]. */
inline constexpr double rho_copper = 2.2e-8;

/**
 * Volumetric specific heat of copper [J/(m^3 * K)].
 * rho = 8960 kg/m^3, c_p = 385 J/(kg K).
 */
inline constexpr double cs_copper = 3.45e6;

/** Temperature coefficient of resistivity for copper [1/K]. */
inline constexpr double tcr_copper = 3.9e-3;

/** Thermal conductivity of copper [W/(m K)]. */
inline constexpr double k_copper = 400.0;

/** Celsius-to-kelvin offset. */
inline constexpr double kelvin_offset = 273.15;

/** Convert nanometres to metres. */
inline constexpr double
fromNm(double nm)
{
    return nm * 1e-9;
}

/** Convert micrometres to metres. */
inline constexpr double
fromUm(double um)
{
    return um * 1e-6;
}

/** Convert millimetres to metres. */
inline constexpr double
fromMm(double mm)
{
    return mm * 1e-3;
}

/** Convert picofarads-per-metre to farads-per-metre. */
inline constexpr double
fromPfPerM(double pf_per_m)
{
    return pf_per_m * 1e-12;
}

/** Convert kilo-ohms-per-metre to ohms-per-metre. */
inline constexpr double
fromKohmPerM(double kohm_per_m)
{
    return kohm_per_m * 1e3;
}

/** Convert gigahertz to hertz. */
inline constexpr double
fromGhz(double ghz)
{
    return ghz * 1e9;
}

/** Convert MA/cm^2 to A/m^2. */
inline constexpr double
fromMaPerCm2(double ma_per_cm2)
{
    return ma_per_cm2 * 1e10;
}

/** Convert degrees Celsius to kelvin. */
inline constexpr double
fromCelsius(double celsius)
{
    return celsius + kelvin_offset;
}

} // namespace units
} // namespace nanobus

#endif // NANOBUS_UTIL_UNITS_HH
