/**
 * @file
 * Physical constants, unit-conversion helpers, and the compile-time
 * dimensional-safety layer.
 *
 * nanobus works in SI units throughout: metres, seconds, kelvin,
 * joules, watts, farads, ohms. Quantities that the literature quotes
 * in scaled units (pF/m, nm, MA/cm^2, ...) are converted at the
 * boundary so that no module ever mixes unit systems internally.
 *
 * Since the pipeline chains farads, joules, watts, kelvin, volts, and
 * metres across five modules, a transposed argument pair or a J-vs-W
 * mixup used to compile cleanly and silently corrupt results. The
 * Quantity<Dim> strong type below makes those errors *compile errors*:
 *
 *  - multiply/divide compose dimensions (FaradsPerMeter * Meters is a
 *    Farads; Farads * Volts * Volts is a Joules),
 *  - add/subtract/compare require exactly matching dimensions,
 *  - construction from a raw double is explicit, and the only way
 *    back out is the explicit .raw() escape hatch.
 *
 * Quantity is zero-overhead: one double, trivially copyable, every
 * operation constexpr and inline. The linear-algebra and ODE layers
 * (la/, util/ode) deliberately stay on raw double vectors — they are
 * dimension-agnostic solvers — and bulk per-line buffers
 * (std::vector<double>) remain raw at those boundaries; scalar public
 * APIs of the physics modules carry the typed quantities.
 *
 * Literal suffixes (45_nm, 1.2_V, 110_K, ...) live in
 * nanobus::units::literals; import them with
 * `using namespace nanobus::units::literals;` in implementation files
 * (never in headers — tools/lint.py enforces this).
 */

#ifndef NANOBUS_UTIL_UNITS_HH
#define NANOBUS_UTIL_UNITS_HH

#include <compare>

namespace nanobus {

/**
 * Exponents of the five SI base dimensions nanobus uses (metre,
 * kilogram, second, ampere, kelvin). A Dimension is a pure type-level
 * vector; arithmetic on Quantity composes these exponents.
 */
template <int MetreE, int KilogramE, int SecondE, int AmpereE,
          int KelvinE>
struct Dimension
{
    static constexpr int metre = MetreE;
    static constexpr int kilogram = KilogramE;
    static constexpr int second = SecondE;
    static constexpr int ampere = AmpereE;
    static constexpr int kelvin = KelvinE;
};

/** Dimension of a product of two quantities. */
template <typename A, typename B>
using DimProduct = Dimension<A::metre + B::metre,
                             A::kilogram + B::kilogram,
                             A::second + B::second,
                             A::ampere + B::ampere,
                             A::kelvin + B::kelvin>;

/** Dimension of a quotient of two quantities. */
template <typename A, typename B>
using DimQuotient = Dimension<A::metre - B::metre,
                              A::kilogram - B::kilogram,
                              A::second - B::second,
                              A::ampere - B::ampere,
                              A::kelvin - B::kelvin>;

/** The trivial dimension: plain numbers. */
using Dimensionless = Dimension<0, 0, 0, 0, 0>;

template <typename Dim>
class Quantity;

/**
 * Maps a result dimension to its representation: Quantity<Dim> in
 * general, but a plain double when every exponent cancels — so
 * ratios like length/length come back as ordinary numbers.
 */
template <typename Dim>
struct QuantityRep
{
    using type = Quantity<Dim>;
};

template <>
struct QuantityRep<Dimensionless>
{
    using type = double;
};

template <typename Dim>
using QuantityOrDouble = typename QuantityRep<Dim>::type;

/**
 * A double tagged with a compile-time dimension.
 *
 * The stored value is always in unscaled SI units of the dimension
 * (metres, not nanometres; A/m^2, not A/cm^2). Construction from raw
 * doubles is explicit; use the literal suffixes or conversion helpers
 * at input boundaries and .raw() where a value exits to a
 * dimension-agnostic solver or writer.
 */
template <typename Dim>
class Quantity
{
  public:
    /** The Dimension<...> this quantity carries. */
    using dims = Dim;

    /** Zero. */
    constexpr Quantity() = default;

    /** Tag a raw SI value; deliberately explicit. */
    explicit constexpr Quantity(double raw) : raw_(raw) {}

    /** The raw SI value — the escape hatch to solver/writer code. */
    constexpr double raw() const { return raw_; }

    constexpr Quantity operator-() const { return Quantity(-raw_); }
    constexpr Quantity operator+() const { return *this; }

    constexpr Quantity operator+(Quantity o) const
    {
        return Quantity(raw_ + o.raw_);
    }

    constexpr Quantity operator-(Quantity o) const
    {
        return Quantity(raw_ - o.raw_);
    }

    constexpr Quantity &operator+=(Quantity o)
    {
        raw_ += o.raw_;
        return *this;
    }

    constexpr Quantity &operator-=(Quantity o)
    {
        raw_ -= o.raw_;
        return *this;
    }

    constexpr Quantity &operator*=(double s)
    {
        raw_ *= s;
        return *this;
    }

    constexpr Quantity &operator/=(double s)
    {
        raw_ /= s;
        return *this;
    }

    constexpr auto operator<=>(const Quantity &) const = default;

  private:
    double raw_ = 0.0;
};

/** Scale by a dimensionless factor (either side). */
template <typename D>
constexpr Quantity<D>
operator*(Quantity<D> q, double s)
{
    return Quantity<D>(q.raw() * s);
}

template <typename D>
constexpr Quantity<D>
operator*(double s, Quantity<D> q)
{
    return Quantity<D>(s * q.raw());
}

template <typename D>
constexpr Quantity<D>
operator/(Quantity<D> q, double s)
{
    return Quantity<D>(q.raw() / s);
}

/** double / quantity inverts the dimension. */
template <typename D>
constexpr QuantityOrDouble<DimQuotient<Dimensionless, D>>
operator/(double s, Quantity<D> q)
{
    return QuantityOrDouble<DimQuotient<Dimensionless, D>>{
        s / q.raw()};
}

/** Products and quotients compose dimensions. */
template <typename D1, typename D2>
constexpr QuantityOrDouble<DimProduct<D1, D2>>
operator*(Quantity<D1> a, Quantity<D2> b)
{
    return QuantityOrDouble<DimProduct<D1, D2>>{a.raw() * b.raw()};
}

template <typename D1, typename D2>
constexpr QuantityOrDouble<DimQuotient<D1, D2>>
operator/(Quantity<D1> a, Quantity<D2> b)
{
    return QuantityOrDouble<DimQuotient<D1, D2>>{a.raw() / b.raw()};
}

// --- Domain aliases -----------------------------------------------------
//
// The aliases below name every dimension the paper's pipeline passes
// between modules. Derived dimensions follow from the SI definitions,
// e.g. F = A^2 s^4 / (kg m^2) and W = kg m^2 / s^3.

/** Length [m]. */
using Meters = Quantity<Dimension<1, 0, 0, 0, 0>>;
/** Area [m^2]. */
using SquareMeters = Quantity<Dimension<2, 0, 0, 0, 0>>;
/** Time [s]. */
using Seconds = Quantity<Dimension<0, 0, 1, 0, 0>>;
/** Frequency [1/s]. */
using Hertz = Quantity<Dimension<0, 0, -1, 0, 0>>;
/** Absolute temperature [K]. */
using Kelvin = Quantity<Dimension<0, 0, 0, 0, 1>>;
/** Electric potential [V]. */
using Volts = Quantity<Dimension<2, 1, -3, -1, 0>>;
/** Current [A]. */
using Amps = Quantity<Dimension<0, 0, 0, 1, 0>>;
/** Resistance [ohm]. */
using Ohms = Quantity<Dimension<2, 1, -3, -2, 0>>;
/** Per-unit-length resistance [ohm/m]. */
using OhmsPerMeter = Quantity<Dimension<1, 1, -3, -2, 0>>;
/** Resistivity [ohm m]. */
using OhmMeters = Quantity<Dimension<3, 1, -3, -2, 0>>;
/** Capacitance [F]. */
using Farads = Quantity<Dimension<-2, -1, 4, 2, 0>>;
/** Per-unit-length capacitance [F/m]. */
using FaradsPerMeter = Quantity<Dimension<-3, -1, 4, 2, 0>>;
/** Energy [J]. */
using Joules = Quantity<Dimension<2, 1, -2, 0, 0>>;
/** Power [W]. */
using Watts = Quantity<Dimension<2, 1, -3, 0, 0>>;
/** Per-unit-length power [W/m], the thermal network's drive unit. */
using WattsPerMeter = Quantity<Dimension<1, 1, -3, 0, 0>>;
/** Heat flux [W/m^2]. */
using WattsPerSquareMeter = Quantity<Dimension<0, 1, -3, 0, 0>>;
/** Thermal conductivity [W/(m K)]. */
using WattsPerMeterKelvin = Quantity<Dimension<1, 1, -3, 0, -1>>;
/** Absolute thermal resistance [K/W]. */
using KelvinPerWatt = Quantity<Dimension<-2, -1, 3, 0, 1>>;
/** Per-unit-length thermal resistance [K m / W]. */
using KelvinMetersPerWatt = Quantity<Dimension<-1, -1, 3, 0, 1>>;
/** Heat capacity [J/K]. */
using JoulesPerKelvin = Quantity<Dimension<2, 1, -2, 0, -1>>;
/** Per-unit-length heat capacity [J/(K m)]. */
using JoulesPerKelvinMeter = Quantity<Dimension<1, 1, -2, 0, -1>>;
/** Volumetric heat capacity [J/(K m^3)]. */
using JoulesPerKelvinCubicMeter = Quantity<Dimension<-1, 1, -2, 0, -1>>;
/** Current density, stored in SI [A/m^2]. */
using AmpsPerSquareMeter = Quantity<Dimension<-2, 0, 0, 1, 0>>;
/**
 * Current density as the paper quotes it. The *storage* is SI A/m^2
 * (dimensionally A/cm^2 and A/m^2 are the same thing); build values
 * from literature numbers with units::ampsPerCm2() or the _MA_cm2
 * literal so the 1e4 scale never appears at call sites.
 */
using AmpsPerCm2 = AmpsPerSquareMeter;

static_assert(sizeof(Meters) == sizeof(double),
              "Quantity must stay a bare double");

namespace units {

/** Vacuum permittivity [F/m]. */
inline constexpr double epsilon0 = 8.8541878128e-12;

/** Resistivity of interconnect copper at operating temp [ohm * m]. */
inline constexpr double rho_copper = 2.2e-8;

/**
 * Volumetric specific heat of copper [J/(m^3 * K)].
 * rho = 8960 kg/m^3, c_p = 385 J/(kg K).
 */
inline constexpr double cs_copper = 3.45e6;

/** Temperature coefficient of resistivity for copper [1/K]. */
inline constexpr double tcr_copper = 3.9e-3;

/** Thermal conductivity of copper [W/(m K)]. */
inline constexpr double k_copper = 400.0;

/** Celsius-to-kelvin offset. */
inline constexpr double kelvin_offset = 273.15;

/** Convert nanometres to metres. */
inline constexpr double
fromNm(double nm)
{
    return nm * 1e-9;
}

/** Convert micrometres to metres. */
inline constexpr double
fromUm(double um)
{
    return um * 1e-6;
}

/** Convert millimetres to metres. */
inline constexpr double
fromMm(double mm)
{
    return mm * 1e-3;
}

/** Convert picofarads-per-metre to farads-per-metre. */
inline constexpr double
fromPfPerM(double picofarads_per_metre)
{
    return picofarads_per_metre * 1e-12;
}

/** Convert kilo-ohms-per-metre to ohms-per-metre. */
inline constexpr double
fromKohmPerM(double kiloohms_per_metre)
{
    return kiloohms_per_metre * 1e3;
}

/** Convert gigahertz to hertz. */
inline constexpr double
fromGhz(double ghz)
{
    return ghz * 1e9;
}

/** Convert MA/cm^2 to A/m^2. */
inline constexpr double
fromMaPerCm2(double ma_per_cm2)
{
    return ma_per_cm2 * 1e10;
}

/** Convert degrees Celsius to kelvin. */
inline constexpr double
fromCelsius(double celsius)
{
    return celsius + kelvin_offset;
}

// --- Typed boundary constructors ---------------------------------------

/** Degrees Celsius as an absolute Kelvin quantity. */
inline constexpr Kelvin
celsius(double degrees_celsius)
{
    return Kelvin{degrees_celsius + kelvin_offset};
}

/** Literature current density [A/cm^2] as an SI quantity. */
inline constexpr AmpsPerCm2
ampsPerCm2(double a_per_cm2)
{
    return AmpsPerCm2{a_per_cm2 * 1e4};
}

/** Literature per-length capacitance [pF/m] as an SI quantity. */
inline constexpr FaradsPerMeter
picofaradsPerMeter(double picofarads_per_metre)
{
    return FaradsPerMeter{picofarads_per_metre * 1e-12};
}

namespace literals {

// Each suffix has a long-double overload (1.2_V) and an integer
// overload (45_nm). Values land in unscaled SI units.

// Length.
constexpr Meters operator""_m(long double v)
{
    return Meters{static_cast<double>(v)};
}
constexpr Meters operator""_m(unsigned long long v)
{
    return Meters{static_cast<double>(v)};
}
constexpr Meters operator""_mm(long double v)
{
    return Meters{static_cast<double>(v) * 1e-3};
}
constexpr Meters operator""_mm(unsigned long long v)
{
    return Meters{static_cast<double>(v) * 1e-3};
}
constexpr Meters operator""_um(long double v)
{
    return Meters{static_cast<double>(v) * 1e-6};
}
constexpr Meters operator""_um(unsigned long long v)
{
    return Meters{static_cast<double>(v) * 1e-6};
}
constexpr Meters operator""_nm(long double v)
{
    return Meters{static_cast<double>(v) * 1e-9};
}
constexpr Meters operator""_nm(unsigned long long v)
{
    return Meters{static_cast<double>(v) * 1e-9};
}

// Time.
constexpr Seconds operator""_s(long double v)
{
    return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_s(unsigned long long v)
{
    return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_ms(long double v)
{
    return Seconds{static_cast<double>(v) * 1e-3};
}
constexpr Seconds operator""_ms(unsigned long long v)
{
    return Seconds{static_cast<double>(v) * 1e-3};
}
constexpr Seconds operator""_ns(long double v)
{
    return Seconds{static_cast<double>(v) * 1e-9};
}
constexpr Seconds operator""_ns(unsigned long long v)
{
    return Seconds{static_cast<double>(v) * 1e-9};
}

// Frequency.
constexpr Hertz operator""_Hz(long double v)
{
    return Hertz{static_cast<double>(v)};
}
constexpr Hertz operator""_Hz(unsigned long long v)
{
    return Hertz{static_cast<double>(v)};
}
constexpr Hertz operator""_GHz(long double v)
{
    return Hertz{static_cast<double>(v) * 1e9};
}
constexpr Hertz operator""_GHz(unsigned long long v)
{
    return Hertz{static_cast<double>(v) * 1e9};
}

// Temperature (absolute).
constexpr Kelvin operator""_K(long double v)
{
    return Kelvin{static_cast<double>(v)};
}
constexpr Kelvin operator""_K(unsigned long long v)
{
    return Kelvin{static_cast<double>(v)};
}

// Electrical.
constexpr Volts operator""_V(long double v)
{
    return Volts{static_cast<double>(v)};
}
constexpr Volts operator""_V(unsigned long long v)
{
    return Volts{static_cast<double>(v)};
}
constexpr Ohms operator""_ohm(long double v)
{
    return Ohms{static_cast<double>(v)};
}
constexpr Ohms operator""_ohm(unsigned long long v)
{
    return Ohms{static_cast<double>(v)};
}
constexpr Farads operator""_F(long double v)
{
    return Farads{static_cast<double>(v)};
}
constexpr Farads operator""_F(unsigned long long v)
{
    return Farads{static_cast<double>(v)};
}
constexpr Farads operator""_pF(long double v)
{
    return Farads{static_cast<double>(v) * 1e-12};
}
constexpr Farads operator""_pF(unsigned long long v)
{
    return Farads{static_cast<double>(v) * 1e-12};
}
constexpr Farads operator""_fF(long double v)
{
    return Farads{static_cast<double>(v) * 1e-15};
}
constexpr Farads operator""_fF(unsigned long long v)
{
    return Farads{static_cast<double>(v) * 1e-15};
}

// Energy and power.
constexpr Joules operator""_J(long double v)
{
    return Joules{static_cast<double>(v)};
}
constexpr Joules operator""_J(unsigned long long v)
{
    return Joules{static_cast<double>(v)};
}
constexpr Joules operator""_pJ(long double v)
{
    return Joules{static_cast<double>(v) * 1e-12};
}
constexpr Joules operator""_pJ(unsigned long long v)
{
    return Joules{static_cast<double>(v) * 1e-12};
}
constexpr Watts operator""_W(long double v)
{
    return Watts{static_cast<double>(v)};
}
constexpr Watts operator""_W(unsigned long long v)
{
    return Watts{static_cast<double>(v)};
}

// Current density, quoted as the paper does (MA/cm^2).
constexpr AmpsPerCm2 operator""_MA_cm2(long double v)
{
    return ampsPerCm2(static_cast<double>(v) * 1e6);
}
constexpr AmpsPerCm2 operator""_MA_cm2(unsigned long long v)
{
    return ampsPerCm2(static_cast<double>(v) * 1e6);
}

} // namespace literals
} // namespace units
} // namespace nanobus

#endif // NANOBUS_UTIL_UNITS_HH
