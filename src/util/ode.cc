#include "util/ode.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/faultinject.hh"
#include "util/logging.hh"

namespace nanobus {

namespace {

bool
allFinite(const std::vector<double> &v)
{
    for (double x : v) {
        if (!std::isfinite(x))
            return false;
    }
    return true;
}

} // anonymous namespace

Rk4Solver::Rk4Solver(size_t dimension)
    : k1_(dimension), k2_(dimension), k3_(dimension), k4_(dimension),
      scratch_(dimension)
{
    if (dimension == 0)
        fatal("Rk4Solver: dimension must be positive");
}

void
Rk4Solver::step(const Derivative &f, double t, double dt,
                std::vector<double> &y)
{
    const size_t n = dimension();
    if (y.size() != n)
        panic("Rk4Solver::step: state size %zu != dimension %zu",
              y.size(), n);

    f(t, y, k1_);

    for (size_t i = 0; i < n; ++i)
        scratch_[i] = y[i] + 0.5 * dt * k1_[i];
    f(t + 0.5 * dt, scratch_, k2_);

    for (size_t i = 0; i < n; ++i)
        scratch_[i] = y[i] + 0.5 * dt * k2_[i];
    f(t + 0.5 * dt, scratch_, k3_);

    for (size_t i = 0; i < n; ++i)
        scratch_[i] = y[i] + dt * k3_[i];
    f(t + dt, scratch_, k4_);

    for (size_t i = 0; i < n; ++i) {
        y[i] += dt / 6.0 *
            (k1_[i] + 2.0 * k2_[i] + 2.0 * k3_[i] + k4_[i]);
    }
}

size_t
Rk4Solver::integrate(const Derivative &f, double t, double duration,
                     double max_dt, std::vector<double> &y)
{
    if (duration < 0.0)
        panic("Rk4Solver::integrate: negative duration %g", duration);
    if (duration == 0.0)
        return 0;
    if (max_dt <= 0.0)
        panic("Rk4Solver::integrate: max_dt must be positive");

    auto steps = static_cast<size_t>(std::ceil(duration / max_dt));
    if (steps == 0)
        steps = 1;
    double dt = duration / static_cast<double>(steps);
    for (size_t i = 0; i < steps; ++i)
        step(f, t + dt * static_cast<double>(i), dt, y);
    return steps;
}

IntegrationReport
Rk4Solver::integrateChecked(const Derivative &f, double t,
                            double duration, double max_dt,
                            std::vector<double> &y, size_t max_retries)
{
    IntegrationReport report;
    if (y.size() != dimension()) {
        report.ok = false;
        report.error = Error{
            ErrorCode::InvalidArgument,
            "state size " + std::to_string(y.size()) +
                " != dimension " + std::to_string(dimension())};
        return report;
    }
    if (duration < 0.0 || !std::isfinite(duration) ||
        max_dt <= 0.0 || !std::isfinite(max_dt)) {
        report.ok = false;
        report.error = Error{ErrorCode::InvalidArgument,
                             "duration must be >= 0 and max_dt > 0"};
        return report;
    }
    if (!allFinite(y)) {
        report.ok = false;
        report.error = Error{ErrorCode::NonFinite,
                             "initial state has a non-finite entry"};
        return report;
    }
    if (duration == 0.0)
        return report;

    auto steps = static_cast<size_t>(std::ceil(duration / max_dt));
    if (steps == 0)
        steps = 1;
    double dt = duration / static_cast<double>(steps);

    const double t_end = t + duration;
    double t_cur = t;
    while (t_cur < t_end) {
        double step_dt = std::min(dt, t_end - t_cur);
        backup_ = y;
        step(f, t_cur, step_dt, y);
        if (FaultInjector::active() &&
            FaultInjector::instance().fireCallFault(FaultSite::Rk4Step))
            y[0] = std::numeric_limits<double>::quiet_NaN();
        if (allFinite(y)) {
            for (double d : k1_)
                report.max_derivative =
                    std::max(report.max_derivative, std::fabs(d));
            t_cur += step_dt;
            ++report.steps;
            continue;
        }
        // Roll back and retry with a narrower step: overshoot from a
        // step wider than the fastest time constant is the usual way
        // an explicit method blows up.
        y = backup_;
        if (report.retries >= max_retries) {
            report.ok = false;
            report.error = Error{
                ErrorCode::NonFinite,
                "state non-finite after " +
                    std::to_string(report.retries) +
                    " step halvings at t=" + std::to_string(t_cur)};
            break;
        }
        ++report.retries;
        dt *= 0.5;
    }
    report.completed_time = t_cur - t;
    return report;
}

} // namespace nanobus
