#include "util/ode.hh"

#include <cmath>

#include "util/logging.hh"

namespace nanobus {

Rk4Solver::Rk4Solver(size_t dimension)
    : k1_(dimension), k2_(dimension), k3_(dimension), k4_(dimension),
      scratch_(dimension)
{
    if (dimension == 0)
        fatal("Rk4Solver: dimension must be positive");
}

void
Rk4Solver::step(const Derivative &f, double t, double dt,
                std::vector<double> &y)
{
    const size_t n = dimension();
    if (y.size() != n)
        panic("Rk4Solver::step: state size %zu != dimension %zu",
              y.size(), n);

    f(t, y, k1_);

    for (size_t i = 0; i < n; ++i)
        scratch_[i] = y[i] + 0.5 * dt * k1_[i];
    f(t + 0.5 * dt, scratch_, k2_);

    for (size_t i = 0; i < n; ++i)
        scratch_[i] = y[i] + 0.5 * dt * k2_[i];
    f(t + 0.5 * dt, scratch_, k3_);

    for (size_t i = 0; i < n; ++i)
        scratch_[i] = y[i] + dt * k3_[i];
    f(t + dt, scratch_, k4_);

    for (size_t i = 0; i < n; ++i) {
        y[i] += dt / 6.0 *
            (k1_[i] + 2.0 * k2_[i] + 2.0 * k3_[i] + k4_[i]);
    }
}

size_t
Rk4Solver::integrate(const Derivative &f, double t, double duration,
                     double max_dt, std::vector<double> &y)
{
    if (duration < 0.0)
        panic("Rk4Solver::integrate: negative duration %g", duration);
    if (duration == 0.0)
        return 0;
    if (max_dt <= 0.0)
        panic("Rk4Solver::integrate: max_dt must be positive");

    auto steps = static_cast<size_t>(std::ceil(duration / max_dt));
    if (steps == 0)
        steps = 1;
    double dt = duration / static_cast<double>(steps);
    for (size_t i = 0; i < steps; ++i)
        step(f, t + dt * static_cast<double>(i), dt, y);
    return steps;
}

} // namespace nanobus
