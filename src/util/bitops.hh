/**
 * @file
 * Bit-manipulation helpers shared by the energy model and encoders.
 *
 * Bus words are carried as uint64_t with bit i holding the logic value
 * of bus line i (line 0 = LSB). Widths up to 64 are supported.
 */

#ifndef NANOBUS_UTIL_BITOPS_HH
#define NANOBUS_UTIL_BITOPS_HH

#include <bit>
#include <cstdint>

namespace nanobus {

/** Mask with the low `width` bits set; width must be in [0, 64]. */
inline constexpr uint64_t
lowMask(unsigned width)
{
    return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

/** Logic value of bit i in word. */
inline constexpr bool
bitOf(uint64_t word, unsigned i)
{
    return (word >> i) & 1ull;
}

/** Word with bit i set to value. */
inline constexpr uint64_t
withBit(uint64_t word, unsigned i, bool value)
{
    return value ? (word | (1ull << i)) : (word & ~(1ull << i));
}

/** Number of set bits. */
inline constexpr unsigned
popcount(uint64_t word)
{
    return static_cast<unsigned>(std::popcount(word));
}

/** Hamming distance between two words over the low `width` bits. */
inline constexpr unsigned
hammingDistance(uint64_t a, uint64_t b, unsigned width)
{
    return popcount((a ^ b) & lowMask(width));
}

/** Mask selecting even bit positions (0, 2, 4, ...) within width. */
inline constexpr uint64_t
evenMask(unsigned width)
{
    return 0x5555555555555555ull & lowMask(width);
}

/** Mask selecting odd bit positions (1, 3, 5, ...) within width. */
inline constexpr uint64_t
oddMask(unsigned width)
{
    return 0xaaaaaaaaaaaaaaaaull & lowMask(width);
}

/**
 * In-place 64x64 bit-matrix transpose.
 *
 * `a` is 64 rows of 64 bits: row r is a[r], column c is bit c (LSB =
 * column 0). After the call, bit r of a[c] equals what bit c of a[r]
 * was. The packed transition kernel uses this to turn 64 bus words
 * (one word per cycle) into 64 line lanes (one u64 per line, bit k =
 * the line's value at cycle k).
 *
 * Classic Hacker's Delight recursive block swap. The high-half mask
 * with `(a[k + j] << j)` is the orientation that yields the true
 * transpose in this LSB-column convention — the low-half variant
 * produces the anti-transpose (pinned in tests/util/test_bitops.cc).
 */
inline constexpr void
transposeBits64(uint64_t a[64])
{
    uint64_t m = 0xffffffff00000000ull;
    for (unsigned j = 32; j != 0; j >>= 1, m ^= m >> j) {
        for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
            uint64_t t = (a[k] ^ (a[k + j] << j)) & m;
            a[k] ^= t;
            a[k + j] ^= t >> j;
        }
    }
}

/** Binary-reflected Gray code of a word. */
inline constexpr uint64_t
toGray(uint64_t word)
{
    return word ^ (word >> 1);
}

/** Inverse of toGray(). */
inline constexpr uint64_t
fromGray(uint64_t gray)
{
    uint64_t word = gray;
    for (unsigned shift = 1; shift < 64; shift <<= 1)
        word ^= word >> shift;
    return word;
}

} // namespace nanobus

#endif // NANOBUS_UTIL_BITOPS_HH
