/**
 * @file
 * Bit-manipulation helpers shared by the energy model and encoders.
 *
 * Bus words are carried as uint64_t with bit i holding the logic value
 * of bus line i (line 0 = LSB). Widths up to 64 are supported.
 */

#ifndef NANOBUS_UTIL_BITOPS_HH
#define NANOBUS_UTIL_BITOPS_HH

#include <bit>
#include <cstdint>

namespace nanobus {

/** Mask with the low `width` bits set; width must be in [0, 64]. */
inline constexpr uint64_t
lowMask(unsigned width)
{
    return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

/** Logic value of bit i in word. */
inline constexpr bool
bitOf(uint64_t word, unsigned i)
{
    return (word >> i) & 1ull;
}

/** Word with bit i set to value. */
inline constexpr uint64_t
withBit(uint64_t word, unsigned i, bool value)
{
    return value ? (word | (1ull << i)) : (word & ~(1ull << i));
}

/** Number of set bits. */
inline constexpr unsigned
popcount(uint64_t word)
{
    return static_cast<unsigned>(std::popcount(word));
}

/** Hamming distance between two words over the low `width` bits. */
inline constexpr unsigned
hammingDistance(uint64_t a, uint64_t b, unsigned width)
{
    return popcount((a ^ b) & lowMask(width));
}

/** Mask selecting even bit positions (0, 2, 4, ...) within width. */
inline constexpr uint64_t
evenMask(unsigned width)
{
    return 0x5555555555555555ull & lowMask(width);
}

/** Mask selecting odd bit positions (1, 3, 5, ...) within width. */
inline constexpr uint64_t
oddMask(unsigned width)
{
    return 0xaaaaaaaaaaaaaaaaull & lowMask(width);
}

/** Binary-reflected Gray code of a word. */
inline constexpr uint64_t
toGray(uint64_t word)
{
    return word ^ (word >> 1);
}

/** Inverse of toGray(). */
inline constexpr uint64_t
fromGray(uint64_t gray)
{
    uint64_t word = gray;
    for (unsigned shift = 1; shift < 64; shift <<= 1)
        word ^= word >> shift;
    return word;
}

} // namespace nanobus

#endif // NANOBUS_UTIL_BITOPS_HH
