#include "util/random.hh"

#include <cmath>

#include "util/logging.hh"

namespace nanobus {

namespace {

/** SplitMix64 step used to expand the user seed into generator state. */
uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : state_)
        word = splitMix64(sm);
    // A theoretically possible all-zero state would lock the generator.
    if (!(state_[0] | state_[1] | state_[2] | state_[3]))
        state_[0] = 0x1ull;
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53-bit mantissa, [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::below(uint64_t bound)
{
    if (bound == 0)
        panic("Rng::below: bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::between(int64_t lo, int64_t hi)
{
    if (lo > hi)
        panic("Rng::between: lo (%lld) > hi (%lld)",
              static_cast<long long>(lo), static_cast<long long>(hi));
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    // span == 0 means the full 64-bit range.
    uint64_t draw = span == 0 ? next() : below(span);
    return lo + static_cast<int64_t>(draw);
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::normal()
{
    if (have_spare_normal_) {
        have_spare_normal_ = false;
        return spare_normal_;
    }
    // Box-Muller; u1 in (0,1] so the log is finite.
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    double radius = std::sqrt(-2.0 * std::log(u1));
    double angle = 2.0 * M_PI * u2;
    spare_normal_ = radius * std::sin(angle);
    have_spare_normal_ = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

uint64_t
Rng::geometric(double p)
{
    if (p <= 0.0 || p > 1.0)
        panic("Rng::geometric: p=%g outside (0, 1]", p);
    if (p == 1.0)
        return 0;
    double u = 1.0 - uniform(); // (0, 1]
    double value = std::floor(std::log(u) / std::log1p(-p));
    return value < 0.0 ? 0 : static_cast<uint64_t>(value);
}

double
Rng::exponential(double mean)
{
    if (mean <= 0.0)
        panic("Rng::exponential: mean=%g must be positive", mean);
    return -mean * std::log(1.0 - uniform());
}

uint64_t
Rng::paretoJump(double alpha, uint64_t max_value)
{
    if (alpha <= 0.0)
        panic("Rng::paretoJump: alpha=%g must be positive", alpha);
    if (max_value == 0)
        return 0;
    double u = 1.0 - uniform(); // (0, 1]
    double magnitude = std::pow(u, -1.0 / alpha);
    if (magnitude >= static_cast<double>(max_value))
        return max_value;
    uint64_t result = static_cast<uint64_t>(magnitude);
    return result < 1 ? 1 : result;
}

} // namespace nanobus
