/**
 * @file
 * FunctionRef — a non-owning, non-allocating reference to a callable,
 * in the spirit of C++26 std::function_ref.
 *
 * std::function type-erases by *owning* a copy of the callable, which
 * may heap-allocate and always calls through two indirections. The
 * ODE hot loop (Rk4Solver invokes its derivative callback four times
 * per step, millions of steps per run) only ever needs to *borrow*
 * the caller's lambda for the duration of one call, so a
 * pointer-plus-trampoline pair is enough: two words, no allocation,
 * trivially copyable.
 *
 * Lifetime contract: a FunctionRef does not extend the life of the
 * callable it refers to. Bind it to a temporary only as a function
 * argument (the temporary outlives the full call expression); never
 * store a FunctionRef member that outlives the callable.
 */

#ifndef NANOBUS_UTIL_FUNCTION_REF_HH
#define NANOBUS_UTIL_FUNCTION_REF_HH

#include <memory>
#include <type_traits>
#include <utility>

namespace nanobus {

template <typename Signature>
class FunctionRef; // undefined; only the specialization below exists

template <typename R, typename... Args>
class FunctionRef<R(Args...)>
{
  public:
    /** Borrow any callable invocable as R(Args...). */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                  std::is_invocable_r_v<R, F &, Args...>>>
    // NOLINTNEXTLINE(google-explicit-constructor): implicit by design,
    // so call sites pass lambdas where a FunctionRef is expected.
    FunctionRef(F &&f) noexcept
    {
        using T = std::remove_reference_t<F>;
        if constexpr (std::is_function_v<T>) {
            // Function-to-object pointer casts are conditionally
            // supported; every platform nanobus targets round-trips
            // them (the same guarantee dlsym relies on).
            obj_ = reinterpret_cast<void *>(&f);
            call_ = [](void *obj, Args... args) -> R {
                return (*reinterpret_cast<T *>(obj))(
                    std::forward<Args>(args)...);
            };
        } else {
            obj_ = const_cast<void *>(
                static_cast<const void *>(std::addressof(f)));
            call_ = [](void *obj, Args... args) -> R {
                return (*static_cast<T *>(obj))(
                    std::forward<Args>(args)...);
            };
        }
    }

    FunctionRef(const FunctionRef &) noexcept = default;
    FunctionRef &operator=(const FunctionRef &) noexcept = default;

    /** Invoke the referenced callable. */
    R operator()(Args... args) const
    {
        return call_(obj_, std::forward<Args>(args)...);
    }

  private:
    void *obj_;
    R (*call_)(void *, Args...);
};

} // namespace nanobus

#endif // NANOBUS_UTIL_FUNCTION_REF_HH
