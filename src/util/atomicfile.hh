/**
 * @file
 * Atomic whole-file writes for result and checkpoint artifacts.
 *
 * Bench CSVs, BENCH_*.json scaling records, and SimPipeline
 * checkpoints are all files another process (or a resumed run) may
 * read while the producer can die at any instant. A plain
 * open-write-close leaves a torn file on a crash mid-write; the
 * standard fix is to stage the bytes in a sibling temporary file and
 * publish with rename(), which POSIX guarantees is atomic within a
 * filesystem. This helper is the single sanctioned call site for
 * that pattern — tools/lint.py (rule `raw-result-write`) bans raw
 * std::fopen/std::rename result-file plumbing everywhere else.
 *
 * Failures are reported as Status (ErrorCode::IoError), never
 * fatal(): a checkpoint that cannot be written must degrade the run,
 * not kill it (docs/ROBUSTNESS.md).
 */

#ifndef NANOBUS_UTIL_ATOMICFILE_HH
#define NANOBUS_UTIL_ATOMICFILE_HH

#include <string>

#include "util/result.hh"

namespace nanobus {

/**
 * Atomically replace the file at `path` with `contents`: the bytes
 * are written to `path + ".tmp"`, flushed, and renamed over `path`.
 * Readers observe either the old file or the complete new one, never
 * a prefix. The temporary lives in the target's directory so the
 * rename cannot cross a filesystem boundary.
 */
[[nodiscard]] Status writeFileAtomic(const std::string &path,
                                     const std::string &contents);

/** The staging path writeFileAtomic uses for `path` (for tests and
 *  cleanup). */
std::string atomicTempPath(const std::string &path);

} // namespace nanobus

#endif // NANOBUS_UTIL_ATOMICFILE_HH
