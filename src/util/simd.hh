/**
 * @file
 * Portable SIMD wrapper for the bit-packed transition kernels.
 *
 * The hot loops of the packed energy path (energy/packed.cc) and the
 * element-wise encoder fast paths (encoding/schemes.cc) operate on
 * arrays of u64 *lanes* — either one lane per bus line (bit k = the
 * line's value at cycle k of a block) or one lane per trace word.
 * This header exposes those array ops behind a single dispatch:
 *
 *  - `simd::scalar::*` — portable reference implementations, always
 *    compiled, directly callable (tests/util/test_simd.cc pins the
 *    vector backends against them bit-for-bit).
 *  - `simd::*` — the public entry points. At compile time they bind
 *    to SSE2, AVX2, or NEON via preprocessor dispatch (scalar when
 *    no ISA is available or the build sets NANOBUS_FORCE_SCALAR); at
 *    run time the NANOBUS_FORCE_SCALAR environment variable reroutes
 *    them to the scalar namespace, so one binary can exercise both
 *    paths.
 *
 * Every op is integer-exact: a vector backend must produce the same
 * bytes as the scalar reference, so kernel results never depend on
 * the ISA the host happens to have (docs/PIPELINE.md, "Scalar/packed
 * equivalence contract").
 */

#ifndef NANOBUS_UTIL_SIMD_HH
#define NANOBUS_UTIL_SIMD_HH

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "util/bitops.hh"

#if !defined(NANOBUS_FORCE_SCALAR_BUILD)
#if defined(__AVX2__)
#define NANOBUS_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64)
#define NANOBUS_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#define NANOBUS_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace nanobus {
namespace simd {

// ---------------------------------------------------------------- //
// Scalar reference backend: always compiled, always callable.

namespace scalar {

/** dst[k] = a[k] ^ b[k]. */
inline void
xorInto(uint64_t *dst, const uint64_t *a, const uint64_t *b, size_t n)
{
    for (size_t k = 0; k < n; ++k)
        dst[k] = a[k] ^ b[k];
}

/** dst[k] = a[k] & b[k]. */
inline void
andInto(uint64_t *dst, const uint64_t *a, const uint64_t *b, size_t n)
{
    for (size_t k = 0; k < n; ++k)
        dst[k] = a[k] & b[k];
}

/** dst[k] = a[k] | b[k]. */
inline void
orInto(uint64_t *dst, const uint64_t *a, const uint64_t *b, size_t n)
{
    for (size_t k = 0; k < n; ++k)
        dst[k] = a[k] | b[k];
}

/** dst[k] = src[k] << shift (per-lane; shift in [0, 63]). */
inline void
shiftLeftInto(uint64_t *dst, const uint64_t *src, unsigned shift,
              size_t n)
{
    for (size_t k = 0; k < n; ++k)
        dst[k] = src[k] << shift;
}

/** dst[k] = src[k] >> shift (per-lane; shift in [0, 63]). */
inline void
shiftRightInto(uint64_t *dst, const uint64_t *src, unsigned shift,
               size_t n)
{
    for (size_t k = 0; k < n; ++k)
        dst[k] = src[k] >> shift;
}

/** dst[k] = src[k] & mask (broadcast mask). */
inline void
maskInto(uint64_t *dst, const uint64_t *src, uint64_t mask, size_t n)
{
    for (size_t k = 0; k < n; ++k)
        dst[k] = src[k] & mask;
}

/** Sum of popcounts over the array. */
inline uint64_t
popcountSum(const uint64_t *a, size_t n)
{
    uint64_t sum = 0;
    for (size_t k = 0; k < n; ++k)
        sum += popcount(a[k]);
    return sum;
}

/** acc[k] += popcount(a[k]) — the per-line self-count update. */
inline void
accumulatePopcounts(uint64_t *acc, const uint64_t *a, size_t n)
{
    for (size_t k = 0; k < n; ++k)
        acc[k] += popcount(a[k]);
}

/**
 * Fused transition-lane op (energy/transition.hh semantics): each
 * lane holds a line's value bit per cycle; `carry[k]` holds the
 * line's value before cycle 0 (bit 0 only). The result marks the
 * cycles where the line changed, masked to the valid cycle range:
 *
 *   t[k] = (s[k] ^ ((s[k] << 1) | carry[k])) & cycle_mask
 */
inline void
transitionLanes(uint64_t *t, const uint64_t *s, const uint64_t *carry,
                uint64_t cycle_mask, size_t n)
{
    for (size_t k = 0; k < n; ++k)
        t[k] = (s[k] ^ ((s[k] << 1) | carry[k])) & cycle_mask;
}

/**
 * Element-wise masked Gray code (encoding/schemes.cc fast path):
 * with t = src[k] & mask, dst[k] = t ^ (t >> 1). The input is masked
 * *before* the shift so a stray bit at position `width` can never
 * leak into result bit width - 1.
 */
inline void
grayInto(uint64_t *dst, const uint64_t *src, uint64_t mask, size_t n)
{
    for (size_t k = 0; k < n; ++k) {
        const uint64_t t = src[k] & mask;
        dst[k] = t ^ (t >> 1);
    }
}

/**
 * dst[k] = (src[k] - src[k-1]) & mask with src[-1] := first_prev —
 * the offset (difference) encoder's whole-batch form. `dst` must not
 * alias `src` one element ahead; dst == src is allowed only when the
 * loop runs backwards, so this reference runs backwards and the
 * vector backends may not alias at all (contract: dst != src).
 */
inline void
diffInto(uint64_t *dst, const uint64_t *src, uint64_t first_prev,
         uint64_t mask, size_t n)
{
    for (size_t k = n; k-- > 1;)
        dst[k] = (src[k] - src[k - 1]) & mask;
    if (n > 0)
        dst[0] = (src[0] - first_prev) & mask;
}

} // namespace scalar

// ---------------------------------------------------------------- //
// Vector backends. Each reuses the scalar loop for ops the ISA has
// no win for (per-element popcounts on SSE2, the backwards diff);
// everything else is the same op four (AVX2) or two (SSE2/NEON)
// lanes at a time with a scalar tail.

#if defined(NANOBUS_SIMD_AVX2)

namespace vec {

inline const char *
name()
{
    return "avx2";
}

inline void
xorInto(uint64_t *dst, const uint64_t *a, const uint64_t *b, size_t n)
{
    size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + k));
        __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + k));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + k),
                            _mm256_xor_si256(va, vb));
    }
    scalar::xorInto(dst + k, a + k, b + k, n - k);
}

inline void
andInto(uint64_t *dst, const uint64_t *a, const uint64_t *b, size_t n)
{
    size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + k));
        __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + k));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + k),
                            _mm256_and_si256(va, vb));
    }
    scalar::andInto(dst + k, a + k, b + k, n - k);
}

inline void
orInto(uint64_t *dst, const uint64_t *a, const uint64_t *b, size_t n)
{
    size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + k));
        __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + k));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + k),
                            _mm256_or_si256(va, vb));
    }
    scalar::orInto(dst + k, a + k, b + k, n - k);
}

inline void
shiftLeftInto(uint64_t *dst, const uint64_t *src, unsigned shift,
              size_t n)
{
    const __m128i count =
        _mm_cvtsi32_si128(static_cast<int>(shift));
    size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + k));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + k),
                            _mm256_sll_epi64(v, count));
    }
    scalar::shiftLeftInto(dst + k, src + k, shift, n - k);
}

inline void
shiftRightInto(uint64_t *dst, const uint64_t *src, unsigned shift,
               size_t n)
{
    const __m128i count =
        _mm_cvtsi32_si128(static_cast<int>(shift));
    size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + k));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + k),
                            _mm256_srl_epi64(v, count));
    }
    scalar::shiftRightInto(dst + k, src + k, shift, n - k);
}

inline void
maskInto(uint64_t *dst, const uint64_t *src, uint64_t mask, size_t n)
{
    const __m256i vm =
        _mm256_set1_epi64x(static_cast<long long>(mask));
    size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + k));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + k),
                            _mm256_and_si256(v, vm));
    }
    scalar::maskInto(dst + k, src + k, mask, n - k);
}

/** Mula's nibble-LUT popcount: per-byte counts via PSHUFB, summed
 *  with SAD against zero. Integer-exact by construction. */
inline uint64_t
popcountSum(const uint64_t *a, size_t n)
{
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low = _mm256_set1_epi8(0x0f);
    __m256i acc = _mm256_setzero_si256();
    size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + k));
        __m256i lo = _mm256_and_si256(v, low);
        __m256i hi =
            _mm256_and_si256(_mm256_srli_epi64(v, 4), low);
        __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
        acc = _mm256_add_epi64(
            acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
    }
    uint64_t lanes[4];
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(lanes), acc);
    return lanes[0] + lanes[1] + lanes[2] + lanes[3] +
        scalar::popcountSum(a + k, n - k);
}

inline void
accumulatePopcounts(uint64_t *acc, const uint64_t *a, size_t n)
{
    // Per-element outputs: the hardware POPCNT loop is already one
    // result per cycle; a vector form would only reshuffle it.
    scalar::accumulatePopcounts(acc, a, n);
}

inline void
transitionLanes(uint64_t *t, const uint64_t *s, const uint64_t *carry,
                uint64_t cycle_mask, size_t n)
{
    const __m256i vm =
        _mm256_set1_epi64x(static_cast<long long>(cycle_mask));
    size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i vs = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(s + k));
        __m256i vc = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(carry + k));
        __m256i prev =
            _mm256_or_si256(_mm256_slli_epi64(vs, 1), vc);
        __m256i out = _mm256_and_si256(_mm256_xor_si256(vs, prev),
                                       vm);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(t + k), out);
    }
    scalar::transitionLanes(t + k, s + k, carry + k, cycle_mask,
                            n - k);
}

inline void
grayInto(uint64_t *dst, const uint64_t *src, uint64_t mask, size_t n)
{
    const __m256i vm =
        _mm256_set1_epi64x(static_cast<long long>(mask));
    size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i v = _mm256_and_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(src + k)),
            vm);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(dst + k),
            _mm256_xor_si256(v, _mm256_srli_epi64(v, 1)));
    }
    scalar::grayInto(dst + k, src + k, mask, n - k);
}

inline void
diffInto(uint64_t *dst, const uint64_t *src, uint64_t first_prev,
         uint64_t mask, size_t n)
{
    const __m256i vm =
        _mm256_set1_epi64x(static_cast<long long>(mask));
    size_t k = 1;
    for (; k + 4 <= n; k += 4) {
        __m256i cur = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + k));
        __m256i prev = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + k - 1));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(dst + k),
            _mm256_and_si256(_mm256_sub_epi64(cur, prev), vm));
    }
    for (; k < n; ++k)
        dst[k] = (src[k] - src[k - 1]) & mask;
    if (n > 0)
        dst[0] = (src[0] - first_prev) & mask;
}

} // namespace vec

#elif defined(NANOBUS_SIMD_SSE2)

namespace vec {

inline const char *
name()
{
    return "sse2";
}

inline void
xorInto(uint64_t *dst, const uint64_t *a, const uint64_t *b, size_t n)
{
    size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        __m128i va = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + k));
        __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + k));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + k),
                         _mm_xor_si128(va, vb));
    }
    scalar::xorInto(dst + k, a + k, b + k, n - k);
}

inline void
andInto(uint64_t *dst, const uint64_t *a, const uint64_t *b, size_t n)
{
    size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        __m128i va = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + k));
        __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + k));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + k),
                         _mm_and_si128(va, vb));
    }
    scalar::andInto(dst + k, a + k, b + k, n - k);
}

inline void
orInto(uint64_t *dst, const uint64_t *a, const uint64_t *b, size_t n)
{
    size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        __m128i va = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + k));
        __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + k));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + k),
                         _mm_or_si128(va, vb));
    }
    scalar::orInto(dst + k, a + k, b + k, n - k);
}

inline void
shiftLeftInto(uint64_t *dst, const uint64_t *src, unsigned shift,
              size_t n)
{
    const __m128i count =
        _mm_cvtsi32_si128(static_cast<int>(shift));
    size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + k));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + k),
                         _mm_sll_epi64(v, count));
    }
    scalar::shiftLeftInto(dst + k, src + k, shift, n - k);
}

inline void
shiftRightInto(uint64_t *dst, const uint64_t *src, unsigned shift,
               size_t n)
{
    const __m128i count =
        _mm_cvtsi32_si128(static_cast<int>(shift));
    size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + k));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + k),
                         _mm_srl_epi64(v, count));
    }
    scalar::shiftRightInto(dst + k, src + k, shift, n - k);
}

inline void
maskInto(uint64_t *dst, const uint64_t *src, uint64_t mask, size_t n)
{
    const __m128i vm =
        _mm_set1_epi64x(static_cast<long long>(mask));
    size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + k));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + k),
                         _mm_and_si128(v, vm));
    }
    scalar::maskInto(dst + k, src + k, mask, n - k);
}

inline uint64_t
popcountSum(const uint64_t *a, size_t n)
{
    // SSE2 has no byte-shuffle LUT; the scalar std::popcount loop is
    // the fastest portable form at this ISA level.
    return scalar::popcountSum(a, n);
}

inline void
accumulatePopcounts(uint64_t *acc, const uint64_t *a, size_t n)
{
    scalar::accumulatePopcounts(acc, a, n);
}

inline void
transitionLanes(uint64_t *t, const uint64_t *s, const uint64_t *carry,
                uint64_t cycle_mask, size_t n)
{
    const __m128i vm =
        _mm_set1_epi64x(static_cast<long long>(cycle_mask));
    size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        __m128i vs = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(s + k));
        __m128i vc = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(carry + k));
        __m128i prev = _mm_or_si128(_mm_slli_epi64(vs, 1), vc);
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(t + k),
            _mm_and_si128(_mm_xor_si128(vs, prev), vm));
    }
    scalar::transitionLanes(t + k, s + k, carry + k, cycle_mask,
                            n - k);
}

inline void
grayInto(uint64_t *dst, const uint64_t *src, uint64_t mask, size_t n)
{
    const __m128i vm =
        _mm_set1_epi64x(static_cast<long long>(mask));
    size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        __m128i v = _mm_and_si128(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(src + k)),
            vm);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + k),
                         _mm_xor_si128(v, _mm_srli_epi64(v, 1)));
    }
    scalar::grayInto(dst + k, src + k, mask, n - k);
}

inline void
diffInto(uint64_t *dst, const uint64_t *src, uint64_t first_prev,
         uint64_t mask, size_t n)
{
    const __m128i vm =
        _mm_set1_epi64x(static_cast<long long>(mask));
    size_t k = 1;
    for (; k + 2 <= n; k += 2) {
        __m128i cur = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + k));
        __m128i prev = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + k - 1));
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(dst + k),
            _mm_and_si128(_mm_sub_epi64(cur, prev), vm));
    }
    for (; k < n; ++k)
        dst[k] = (src[k] - src[k - 1]) & mask;
    if (n > 0)
        dst[0] = (src[0] - first_prev) & mask;
}

} // namespace vec

#elif defined(NANOBUS_SIMD_NEON)

namespace vec {

inline const char *
name()
{
    return "neon";
}

inline void
xorInto(uint64_t *dst, const uint64_t *a, const uint64_t *b, size_t n)
{
    size_t k = 0;
    for (; k + 2 <= n; k += 2)
        vst1q_u64(dst + k,
                  veorq_u64(vld1q_u64(a + k), vld1q_u64(b + k)));
    scalar::xorInto(dst + k, a + k, b + k, n - k);
}

inline void
andInto(uint64_t *dst, const uint64_t *a, const uint64_t *b, size_t n)
{
    size_t k = 0;
    for (; k + 2 <= n; k += 2)
        vst1q_u64(dst + k,
                  vandq_u64(vld1q_u64(a + k), vld1q_u64(b + k)));
    scalar::andInto(dst + k, a + k, b + k, n - k);
}

inline void
orInto(uint64_t *dst, const uint64_t *a, const uint64_t *b, size_t n)
{
    size_t k = 0;
    for (; k + 2 <= n; k += 2)
        vst1q_u64(dst + k,
                  vorrq_u64(vld1q_u64(a + k), vld1q_u64(b + k)));
    scalar::orInto(dst + k, a + k, b + k, n - k);
}

inline void
shiftLeftInto(uint64_t *dst, const uint64_t *src, unsigned shift,
              size_t n)
{
    const int64x2_t count = vdupq_n_s64(static_cast<int64_t>(shift));
    size_t k = 0;
    for (; k + 2 <= n; k += 2)
        vst1q_u64(dst + k, vshlq_u64(vld1q_u64(src + k), count));
    scalar::shiftLeftInto(dst + k, src + k, shift, n - k);
}

inline void
shiftRightInto(uint64_t *dst, const uint64_t *src, unsigned shift,
               size_t n)
{
    const int64x2_t count =
        vdupq_n_s64(-static_cast<int64_t>(shift));
    size_t k = 0;
    for (; k + 2 <= n; k += 2)
        vst1q_u64(dst + k, vshlq_u64(vld1q_u64(src + k), count));
    scalar::shiftRightInto(dst + k, src + k, shift, n - k);
}

inline void
maskInto(uint64_t *dst, const uint64_t *src, uint64_t mask, size_t n)
{
    const uint64x2_t vm = vdupq_n_u64(mask);
    size_t k = 0;
    for (; k + 2 <= n; k += 2)
        vst1q_u64(dst + k, vandq_u64(vld1q_u64(src + k), vm));
    scalar::maskInto(dst + k, src + k, mask, n - k);
}

inline uint64_t
popcountSum(const uint64_t *a, size_t n)
{
    uint64_t sum = 0;
    size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        uint8x16_t bytes =
            vcntq_u8(vreinterpretq_u8_u64(vld1q_u64(a + k)));
        sum += vaddvq_u8(bytes);
    }
    return sum + scalar::popcountSum(a + k, n - k);
}

inline void
accumulatePopcounts(uint64_t *acc, const uint64_t *a, size_t n)
{
    scalar::accumulatePopcounts(acc, a, n);
}

inline void
transitionLanes(uint64_t *t, const uint64_t *s, const uint64_t *carry,
                uint64_t cycle_mask, size_t n)
{
    const uint64x2_t vm = vdupq_n_u64(cycle_mask);
    size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        uint64x2_t vs = vld1q_u64(s + k);
        uint64x2_t prev =
            vorrq_u64(vshlq_n_u64(vs, 1), vld1q_u64(carry + k));
        vst1q_u64(t + k, vandq_u64(veorq_u64(vs, prev), vm));
    }
    scalar::transitionLanes(t + k, s + k, carry + k, cycle_mask,
                            n - k);
}

inline void
grayInto(uint64_t *dst, const uint64_t *src, uint64_t mask, size_t n)
{
    const uint64x2_t vm = vdupq_n_u64(mask);
    size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        uint64x2_t v = vandq_u64(vld1q_u64(src + k), vm);
        vst1q_u64(dst + k, veorq_u64(v, vshrq_n_u64(v, 1)));
    }
    scalar::grayInto(dst + k, src + k, mask, n - k);
}

inline void
diffInto(uint64_t *dst, const uint64_t *src, uint64_t first_prev,
         uint64_t mask, size_t n)
{
    const uint64x2_t vm = vdupq_n_u64(mask);
    size_t k = 1;
    for (; k + 2 <= n; k += 2) {
        uint64x2_t cur = vld1q_u64(src + k);
        uint64x2_t prev = vld1q_u64(src + k - 1);
        vst1q_u64(dst + k, vandq_u64(vsubq_u64(cur, prev), vm));
    }
    for (; k < n; ++k)
        dst[k] = (src[k] - src[k - 1]) & mask;
    if (n > 0)
        dst[0] = (src[0] - first_prev) & mask;
}

} // namespace vec

#else // no vector ISA, or NANOBUS_FORCE_SCALAR_BUILD

namespace vec {

inline const char *
name()
{
    return "scalar";
}

using scalar::accumulatePopcounts;
using scalar::andInto;
using scalar::diffInto;
using scalar::grayInto;
using scalar::maskInto;
using scalar::orInto;
using scalar::popcountSum;
using scalar::shiftLeftInto;
using scalar::shiftRightInto;
using scalar::transitionLanes;
using scalar::xorInto;

} // namespace vec

#endif

// ---------------------------------------------------------------- //
// Public dispatch.

/** Compile-time backend ("avx2", "sse2", "neon", or "scalar"). */
inline const char *
compiledBackend()
{
    return vec::name();
}

/**
 * True when the NANOBUS_FORCE_SCALAR environment variable routes
 * every public op to the scalar reference ("", "0", and "OFF" leave
 * the vector backend active). Sampled once per process: flipping the
 * variable mid-run must not change kernel routing between blocks.
 */
inline bool
forcedScalar()
{
    static const bool forced = [] {
        const char *env = std::getenv("NANOBUS_FORCE_SCALAR");
        if (!env || *env == '\0')
            return false;
        return std::strcmp(env, "0") != 0 &&
            std::strcmp(env, "OFF") != 0 &&
            std::strcmp(env, "off") != 0;
    }();
    return forced;
}

/** Backend the public ops dispatch to, after the runtime override. */
inline const char *
activeBackend()
{
    return forcedScalar() ? "scalar" : compiledBackend();
}

inline void
xorInto(uint64_t *dst, const uint64_t *a, const uint64_t *b, size_t n)
{
    forcedScalar() ? scalar::xorInto(dst, a, b, n)
                   : vec::xorInto(dst, a, b, n);
}

inline void
andInto(uint64_t *dst, const uint64_t *a, const uint64_t *b, size_t n)
{
    forcedScalar() ? scalar::andInto(dst, a, b, n)
                   : vec::andInto(dst, a, b, n);
}

inline void
orInto(uint64_t *dst, const uint64_t *a, const uint64_t *b, size_t n)
{
    forcedScalar() ? scalar::orInto(dst, a, b, n)
                   : vec::orInto(dst, a, b, n);
}

inline void
shiftLeftInto(uint64_t *dst, const uint64_t *src, unsigned shift,
              size_t n)
{
    forcedScalar() ? scalar::shiftLeftInto(dst, src, shift, n)
                   : vec::shiftLeftInto(dst, src, shift, n);
}

inline void
shiftRightInto(uint64_t *dst, const uint64_t *src, unsigned shift,
               size_t n)
{
    forcedScalar() ? scalar::shiftRightInto(dst, src, shift, n)
                   : vec::shiftRightInto(dst, src, shift, n);
}

inline void
maskInto(uint64_t *dst, const uint64_t *src, uint64_t mask, size_t n)
{
    forcedScalar() ? scalar::maskInto(dst, src, mask, n)
                   : vec::maskInto(dst, src, mask, n);
}

inline uint64_t
popcountSum(const uint64_t *a, size_t n)
{
    return forcedScalar() ? scalar::popcountSum(a, n)
                          : vec::popcountSum(a, n);
}

inline void
accumulatePopcounts(uint64_t *acc, const uint64_t *a, size_t n)
{
    forcedScalar() ? scalar::accumulatePopcounts(acc, a, n)
                   : vec::accumulatePopcounts(acc, a, n);
}

inline void
transitionLanes(uint64_t *t, const uint64_t *s, const uint64_t *carry,
                uint64_t cycle_mask, size_t n)
{
    forcedScalar()
        ? scalar::transitionLanes(t, s, carry, cycle_mask, n)
        : vec::transitionLanes(t, s, carry, cycle_mask, n);
}

inline void
grayInto(uint64_t *dst, const uint64_t *src, uint64_t mask, size_t n)
{
    forcedScalar() ? scalar::grayInto(dst, src, mask, n)
                   : vec::grayInto(dst, src, mask, n);
}

inline void
diffInto(uint64_t *dst, const uint64_t *src, uint64_t first_prev,
         uint64_t mask, size_t n)
{
    forcedScalar() ? scalar::diffInto(dst, src, first_prev, mask, n)
                   : vec::diffInto(dst, src, first_prev, mask, n);
}

} // namespace simd
} // namespace nanobus

#endif // NANOBUS_UTIL_SIMD_HH
