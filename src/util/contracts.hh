/**
 * @file
 * Contract macros: NANOBUS_EXPECT (preconditions) and NANOBUS_ENSURE
 * (postconditions / invariants).
 *
 * Policy (see docs/STATIC_ANALYSIS.md):
 *
 *  - In checked builds the macros are *debug-fatal*: a violated
 *    contract panics with the stringified condition, file, line, and
 *    the caller's printf-style message. panic() is the right channel —
 *    a violated contract is a nanobus bug, not a user error.
 *  - In unchecked (NDEBUG) builds they are *release-hints*: the
 *    condition is handed to the optimizer as an assumption and no code
 *    is generated for it. Contracts must therefore state only true
 *    invariants — they are not input validation (use fatal() or
 *    Result<T> for that) and must never have side effects.
 *
 * The default follows NDEBUG; define NANOBUS_CONTRACT_CHECKS to 0 or 1
 * before including this header (or via the compiler command line) to
 * force either mode — tests force 1 so contract violations stay
 * observable under RelWithDebInfo.
 */

#ifndef NANOBUS_UTIL_CONTRACTS_HH
#define NANOBUS_UTIL_CONTRACTS_HH

#include "util/logging.hh"

#ifndef NANOBUS_CONTRACT_CHECKS
#ifdef NDEBUG
#define NANOBUS_CONTRACT_CHECKS 0
#else
#define NANOBUS_CONTRACT_CHECKS 1
#endif
#endif

/** Tell the optimizer `cond` holds, generating no check. */
#if defined(__clang__)
#define NANOBUS_ASSUME_(cond) __builtin_assume(cond)
#elif defined(__GNUC__)
#define NANOBUS_ASSUME_(cond) \
    do { \
        if (!(cond)) \
            __builtin_unreachable(); \
    } while (0)
#else
#define NANOBUS_ASSUME_(cond) ((void)0)
#endif

#if NANOBUS_CONTRACT_CHECKS

#define NANOBUS_CONTRACT_(kind, cond, fmt, ...) \
    do { \
        if (!(cond)) [[unlikely]] { \
            ::nanobus::panic(kind " violated: (%s) at %s:%d: " fmt, \
                             #cond, __FILE__, \
                             __LINE__ __VA_OPT__(, ) __VA_ARGS__); \
        } \
    } while (0)

#else

#define NANOBUS_CONTRACT_(kind, cond, fmt, ...) NANOBUS_ASSUME_(cond)

#endif

/**
 * Precondition: the caller must guarantee `cond`. The tail is a
 * printf-style message, e.g.
 * NANOBUS_EXPECT(i < n, "wire index %u out of range", i);
 */
#define NANOBUS_EXPECT(cond, fmt, ...) \
    NANOBUS_CONTRACT_("precondition", cond, fmt __VA_OPT__(, ) __VA_ARGS__)

/** Postcondition / invariant: this code must have established `cond`. */
#define NANOBUS_ENSURE(cond, fmt, ...) \
    NANOBUS_CONTRACT_("postcondition", cond, \
                      fmt __VA_OPT__(, ) __VA_ARGS__)

#endif // NANOBUS_UTIL_CONTRACTS_HH
