#include "util/atomicfile.hh"

#include <cstdio>
#include <fstream>

namespace nanobus {

std::string
atomicTempPath(const std::string &path)
{
    return path + ".tmp";
}

Status
writeFileAtomic(const std::string &path, const std::string &contents)
{
    const std::string tmp = atomicTempPath(path);
    {
        std::ofstream out(tmp,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            return Status::failure(
                ErrorCode::IoError,
                "writeFileAtomic: cannot open '" + tmp +
                    "' for writing");
        }
        out.write(contents.data(),
                  static_cast<std::streamsize>(contents.size()));
        out.flush();
        if (!out) {
            out.close();
            std::remove(tmp.c_str());
            return Status::failure(
                ErrorCode::IoError,
                "writeFileAtomic: write to '" + tmp +
                    "' failed (disk full?)");
        }
    }
    // The one sanctioned publish point (lint: raw-result-write).
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return Status::failure(
            ErrorCode::IoError,
            "writeFileAtomic: cannot rename '" + tmp + "' over '" +
                path + "'");
    }
    return Status();
}

} // namespace nanobus
