/**
 * @file
 * Minimal CSV emitter for bench/example time-series output.
 *
 * Rows are staged in memory and published atomically on flush()
 * (temp file + rename via util/atomicfile.hh), so a crash mid-run
 * leaves either the previous flush's complete file or no file —
 * never a torn CSV a plotting script would silently truncate.
 */

#ifndef NANOBUS_UTIL_CSV_HH
#define NANOBUS_UTIL_CSV_HH

#include <string>
#include <vector>

#include "util/units.hh"

namespace nanobus {

/**
 * Writes rows of mixed string/numeric cells to a CSV file, quoting
 * cells that contain separators or quotes per RFC 4180.
 */
class CsvWriter
{
  public:
    /**
     * Stage output destined for `path`. Nothing touches the
     * filesystem until flush(); the destination is probed for
     * writability up front and fatal() is called if it cannot be
     * opened (failing at construction, not after hours of sweep).
     */
    explicit CsvWriter(const std::string &path);

    /** Publishes any staged rows not yet flushed. */
    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

    /** Emit a header row from column names. */
    void header(const std::vector<std::string> &columns);

    /** Begin a new row; cells are appended with cell(). */
    void beginRow();

    /** Append a string cell to the current row. */
    void cell(const std::string &value);

    /** Append a numeric cell (max round-trip precision). */
    void cell(double value);

    /** Append an integer cell. */
    void cell(uint64_t value);

    /** Append a dimensioned quantity as its raw SI value. */
    template <typename Dim>
    void cell(Quantity<Dim> value) { cell(value.raw()); }

    /** Terminate the current row. */
    void endRow();

    /** Convenience: emit a complete row of preformatted cells. */
    void row(const std::vector<std::string> &cells);

    /**
     * Atomically publish everything staged so far (temp file +
     * rename). Safe to call repeatedly; each flush rewrites the
     * whole file. fatal() if the write fails — losing result rows
     * silently is never acceptable.
     */
    void flush();

  private:
    void emit(const std::string &raw);

    std::string buffer_;
    std::string path_;
    bool row_open_ = false;
    bool first_cell_ = true;
    bool dirty_ = false;
};

} // namespace nanobus

#endif // NANOBUS_UTIL_CSV_HH
