/**
 * @file
 * Minimal CSV emitter for bench/example time-series output.
 */

#ifndef NANOBUS_UTIL_CSV_HH
#define NANOBUS_UTIL_CSV_HH

#include <fstream>
#include <string>
#include <vector>

#include "util/units.hh"

namespace nanobus {

/**
 * Writes rows of mixed string/numeric cells to a CSV file, quoting
 * cells that contain separators or quotes per RFC 4180.
 */
class CsvWriter
{
  public:
    /**
     * Open `path` for writing, truncating any existing file.
     * Calls fatal() if the file cannot be opened.
     */
    explicit CsvWriter(const std::string &path);

    /** Emit a header row from column names. */
    void header(const std::vector<std::string> &columns);

    /** Begin a new row; cells are appended with cell(). */
    void beginRow();

    /** Append a string cell to the current row. */
    void cell(const std::string &value);

    /** Append a numeric cell (max round-trip precision). */
    void cell(double value);

    /** Append an integer cell. */
    void cell(uint64_t value);

    /** Append a dimensioned quantity as its raw SI value. */
    template <typename Dim>
    void cell(Quantity<Dim> value) { cell(value.raw()); }

    /** Terminate the current row. */
    void endRow();

    /** Convenience: emit a complete row of preformatted cells. */
    void row(const std::vector<std::string> &cells);

    /** Flush buffered output to disk. */
    void flush();

  private:
    void emit(const std::string &raw);

    std::ofstream out_;
    std::string path_;
    bool row_open_ = false;
    bool first_cell_ = true;
};

} // namespace nanobus

#endif // NANOBUS_UTIL_CSV_HH
