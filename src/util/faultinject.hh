/**
 * @file
 * Deterministic fault-injection harness for the solver stack.
 *
 * Robustness claims are only as good as their tests: every recovery
 * path (LU singularity handling, RK4 non-finite retries, trace-line
 * skipping) must be provably reachable and provably recovering. The
 * FaultInjector lets tests arm faults that fire at exact,
 * reproducible points:
 *
 *  - force a solver failure on the Nth call to a given site
 *    (LuFactorization::tryFactor/trySolve, Rk4Solver stepping);
 *  - flip a bit in the Nth raw trace line read by TraceReader;
 *  - deterministically perturb matrix entries (seeded xoshiro).
 *
 * The instrumented production code pays a single relaxed atomic load
 * when no fault is armed. The harness is process-global and
 * thread-safe: armed-trigger state and counters are guarded by a
 * mutex so faults can be injected into sweeps running on the
 * src/exec thread pool (arming *while* instrumented code runs is
 * still a test-sequencing error — arm before, read counters after).
 */

#ifndef NANOBUS_UTIL_FAULTINJECT_HH
#define NANOBUS_UTIL_FAULTINJECT_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

namespace nanobus {

/** Instrumented points where a call fault can be armed. */
enum class FaultSite : unsigned {
    /** LuFactorization::tryFactor. */
    LuFactor = 0,
    /** LuFactorization::trySolve. */
    LuSolve,
    /** One accepted RK4 step inside integrateChecked. */
    Rk4Step,
    /** One raw line read by TraceReader::next. */
    TraceLine,
    /**
     * One batch fill by BatchReader/PrefetchReader. Firing throws a
     * transient I/O failure out of the fill, which the batch layer
     * latches as ErrorCode::IoError — the deterministic stand-in for
     * a flaky filesystem that exercises the supervisor's retry path.
     */
    TransientIo,
    /**
     * One exec::JobContext::pulse() heartbeat. Firing parks the
     * worker in a sleep loop until the job is aborted (by the
     * supervisor's watchdog or its own deadline) — the deterministic
     * stand-in for a hung worker, with no timing flakes.
     */
    Stall,
};

/** Number of distinct fault sites. */
constexpr unsigned kNumFaultSites = 6;

/** Process-global deterministic fault injector. */
class FaultInjector
{
  public:
    /** The global injector instance. */
    static FaultInjector &instance();

    /**
     * True when any fault is armed. Instrumented code checks this
     * first so the disarmed hot path costs one predictable branch
     * (a relaxed atomic load; the armed path takes the mutex).
     */
    static bool active()
    {
        return active_.load(std::memory_order_relaxed);
    }

    /** Disarm every fault and zero all counters. */
    void reset();

    /**
     * Arm a failure at `site`: the trigger fires on the `nth` call
     * (1-based) after arming, and — when `repeat_every` > 0 — again
     * every `repeat_every` calls after that.
     */
    void armCallFault(FaultSite site, uint64_t nth,
                      uint64_t repeat_every = 0);

    /**
     * Arm trace-line corruption with the same cadence semantics as
     * armCallFault; fired lines get one character bit-flipped.
     */
    void armTraceCorruption(uint64_t nth_line,
                            uint64_t repeat_every = 0);

    /**
     * Called by instrumented code: count one call at `site` and
     * return true when the armed trigger fires.
     */
    bool fireCallFault(FaultSite site);

    /**
     * Called by TraceReader for every raw line: when the TraceLine
     * trigger fires, XOR bit 6 of the first character of `line`
     * (deterministically turning a well-formed record into a
     * malformed one) and return true.
     */
    bool corruptLine(std::string &line);

    /** Calls observed at `site` since the last reset. */
    uint64_t callCount(FaultSite site) const;

    /** Faults actually fired at `site` since the last reset. */
    uint64_t firedCount(FaultSite site) const;

    /**
     * Deterministically perturb `count` doubles in place: each value
     * gains an additive error uniform in [-magnitude, +magnitude]
     * scaled by the largest |value| in the array. Same seed, same
     * perturbation — suitable for constructing reproducibly
     * ill-conditioned or asymmetric matrices in tests.
     */
    static void perturbEntries(double *values, size_t count,
                               double relative_magnitude,
                               uint64_t seed);

  private:
    FaultInjector() = default;

    struct Trigger
    {
        bool armed = false;
        uint64_t nth = 0;
        uint64_t repeat = 0;
        uint64_t calls = 0;
        uint64_t fired = 0;
    };

    Trigger &trigger(FaultSite site);
    const Trigger &trigger(FaultSite site) const;
    void refreshActive();

    /** Guards triggers_; counters race without it once instrumented
     *  code runs on the exec thread pool. */
    mutable std::mutex mutex_;
    Trigger triggers_[kNumFaultSites];
    static std::atomic<bool> active_;
};

} // namespace nanobus

#endif // NANOBUS_UTIL_FAULTINJECT_HH
