#include "util/checkpoint.hh"

#include <bit>
#include <fstream>
#include <sstream>

#include "util/atomicfile.hh"

namespace nanobus {

namespace {

constexpr char snapshot_magic[4] = {'N', 'B', 'C', 'K'};

/** Reflected CRC-32 table for polynomial 0xEDB88320, built once. */
const uint32_t *
crcTable()
{
    static const auto table = [] {
        struct Table { uint32_t entries[256]; } t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t crc = i;
            for (int bit = 0; bit < 8; ++bit)
                crc = (crc >> 1) ^ ((crc & 1u) ? 0xedb88320u : 0u);
            t.entries[i] = crc;
        }
        return t;
    }();
    return table.entries;
}

void
appendLe(std::string &buffer, uint64_t value, unsigned bytes)
{
    for (unsigned i = 0; i < bytes; ++i)
        buffer.push_back(
            static_cast<char>((value >> (8 * i)) & 0xff));
}

uint64_t
readLe(const char *bytes, unsigned count)
{
    uint64_t value = 0;
    for (unsigned i = 0; i < count; ++i)
        value |= static_cast<uint64_t>(
                     static_cast<unsigned char>(bytes[i]))
            << (8 * i);
    return value;
}

} // anonymous namespace

uint32_t
crc32(const void *data, size_t size, uint32_t seed)
{
    const uint32_t *table = crcTable();
    const auto *bytes = static_cast<const unsigned char *>(data);
    uint32_t crc = ~seed;
    for (size_t i = 0; i < size; ++i)
        crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xffu];
    return ~crc;
}

void
SnapshotWriter::putU32(uint32_t value)
{
    appendLe(buffer_, value, 4);
}

void
SnapshotWriter::putU64(uint64_t value)
{
    appendLe(buffer_, value, 8);
}

void
SnapshotWriter::putF64(double value)
{
    appendLe(buffer_, std::bit_cast<uint64_t>(value), 8);
}

void
SnapshotWriter::putString(const std::string &value)
{
    putU64(value.size());
    buffer_.append(value);
}

Status
SnapshotReader::take(size_t count, const char *&out)
{
    if (buffer_.size() - offset_ < count) {
        return Status::failure(
            ErrorCode::ParseError,
            "snapshot truncated: need " + std::to_string(count) +
                " byte(s), " + std::to_string(remaining()) +
                " left");
    }
    out = buffer_.data() + offset_;
    offset_ += count;
    return Status();
}

Status
SnapshotReader::getU32(uint32_t &out)
{
    const char *bytes = nullptr;
    Status status = take(4, bytes);
    if (!status.ok())
        return status;
    out = static_cast<uint32_t>(readLe(bytes, 4));
    return Status();
}

Status
SnapshotReader::getU64(uint64_t &out)
{
    const char *bytes = nullptr;
    Status status = take(8, bytes);
    if (!status.ok())
        return status;
    out = readLe(bytes, 8);
    return Status();
}

Status
SnapshotReader::getF64(double &out)
{
    uint64_t bits = 0;
    Status status = getU64(bits);
    if (!status.ok())
        return status;
    out = std::bit_cast<double>(bits);
    return Status();
}

Status
SnapshotReader::getBool(bool &out)
{
    uint32_t raw = 0;
    Status status = getU32(raw);
    if (!status.ok())
        return status;
    out = raw != 0;
    return Status();
}

Status
SnapshotReader::getString(std::string &out)
{
    uint64_t size = 0;
    Status status = getU64(size);
    if (!status.ok())
        return status;
    const char *bytes = nullptr;
    status = take(static_cast<size_t>(size), bytes);
    if (!status.ok())
        return status;
    out.assign(bytes, static_cast<size_t>(size));
    return Status();
}

Status
saveSnapshotFile(const std::string &path, const std::string &payload)
{
    std::string file;
    file.append(snapshot_magic, sizeof(snapshot_magic));
    appendLe(file, kSnapshotFormatVersion, 4);
    appendLe(file, payload.size(), 8);
    appendLe(file, crc32(payload.data(), payload.size()), 4);
    file.append(payload);
    return writeFileAtomic(path, file);
}

Result<std::string>
loadSnapshotFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return Result<std::string>::failure(
            ErrorCode::IoError,
            "snapshot: cannot open '" + path + "'");
    }
    std::ostringstream slurp;
    slurp << in.rdbuf();
    const std::string file = slurp.str();

    constexpr size_t header_size = 4 + 4 + 8 + 4;
    if (file.size() < header_size) {
        return Result<std::string>::failure(
            ErrorCode::ParseError,
            "snapshot '" + path + "': truncated header");
    }
    if (file.compare(0, sizeof(snapshot_magic), snapshot_magic,
                     sizeof(snapshot_magic)) != 0) {
        return Result<std::string>::failure(
            ErrorCode::ParseError,
            "snapshot '" + path + "': bad magic");
    }
    const auto version =
        static_cast<uint32_t>(readLe(file.data() + 4, 4));
    if (version != kSnapshotFormatVersion) {
        return Result<std::string>::failure(
            ErrorCode::ParseError,
            "snapshot '" + path + "': format version " +
                std::to_string(version) + " (expected " +
                std::to_string(kSnapshotFormatVersion) + ")");
    }
    const uint64_t length = readLe(file.data() + 8, 8);
    if (file.size() - header_size != length) {
        return Result<std::string>::failure(
            ErrorCode::ParseError,
            "snapshot '" + path + "': payload is " +
                std::to_string(file.size() - header_size) +
                " byte(s) but the header declares " +
                std::to_string(length));
    }
    const auto stored_crc =
        static_cast<uint32_t>(readLe(file.data() + 16, 4));
    std::string payload = file.substr(header_size);
    const uint32_t actual_crc =
        crc32(payload.data(), payload.size());
    if (stored_crc != actual_crc) {
        return Result<std::string>::failure(
            ErrorCode::ParseError,
            "snapshot '" + path + "': CRC mismatch (file corrupt)");
    }
    return payload;
}

} // namespace nanobus
