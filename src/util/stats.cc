#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace nanobus {

void
RunningStats::add(double value)
{
    ++count_;
    sum_ += value;
    double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    uint64_t n = count_ + other.count_;
    double delta = other.mean_ - mean_;
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    mean_ += delta * nb / static_cast<double>(n);
    m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
    sum_ += other.sum_;
    count_ = n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    if (!(hi > lo))
        fatal("Histogram: hi (%g) must exceed lo (%g)", hi, lo);
    if (bins == 0)
        fatal("Histogram: bin count must be positive");
}

void
Histogram::add(double value)
{
    ++total_;
    if (value < lo_) {
        ++underflow_;
        return;
    }
    if (value >= hi_) {
        ++overflow_;
        return;
    }
    auto idx = static_cast<size_t>((value - lo_) / width_);
    if (idx >= counts_.size())
        idx = counts_.size() - 1; // guard against FP edge rounding
    ++counts_[idx];
}

uint64_t
Histogram::binCount(size_t i) const
{
    if (i >= counts_.size())
        panic("Histogram::binCount: bin %zu out of range", i);
    return counts_[i];
}

double
Histogram::binLow(size_t i) const
{
    if (i >= counts_.size())
        panic("Histogram::binLow: bin %zu out of range", i);
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::quantile(double q) const
{
    if (q < 0.0 || q > 1.0)
        panic("Histogram::quantile: q=%g outside [0, 1]", q);
    if (total_ == 0)
        return lo_;

    double target = q * static_cast<double>(total_);
    double seen = static_cast<double>(underflow_);
    if (target <= seen)
        return lo_;
    for (size_t i = 0; i < counts_.size(); ++i) {
        double in_bin = static_cast<double>(counts_[i]);
        if (seen + in_bin >= target && in_bin > 0.0) {
            double frac = (target - seen) / in_bin;
            return binLow(i) + frac * width_;
        }
        seen += in_bin;
    }
    return hi_;
}

} // namespace nanobus
