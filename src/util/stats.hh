/**
 * @file
 * Streaming statistics accumulators used by the simulators and benches.
 */

#ifndef NANOBUS_UTIL_STATS_HH
#define NANOBUS_UTIL_STATS_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace nanobus {

/**
 * Single-pass mean / variance / extrema accumulator (Welford update).
 */
class RunningStats
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double value);

    /** Merge another accumulator into this one (parallel-safe combine). */
    void merge(const RunningStats &other);

    /** Reset to the empty state. */
    void reset();

    /** Number of samples folded in so far. */
    uint64_t count() const { return count_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Population variance; 0 with fewer than two samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample; +inf when empty. */
    double min() const { return min_; }

    /** Largest sample; -inf when empty. */
    double max() const { return max_; }

    /**
     * Full internal state, for checkpoint/resume. Capturing and
     * restoring through State is bit-identical: a restored
     * accumulator folds further samples exactly as the original
     * would have.
     */
    struct State
    {
        uint64_t count = 0;
        double mean = 0.0;
        double m2 = 0.0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
    };

    /** Capture the accumulator state. */
    State state() const
    {
        return State{count_, mean_, m2_, sum_, min_, max_};
    }

    /** Restore a previously captured state. */
    void restore(const State &s)
    {
        count_ = s.count;
        mean_ = s.mean;
        m2_ = s.m2;
        sum_ = s.sum;
        min_ = s.min;
        max_ = s.max;
    }

  private:
    uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-range linear histogram with under/overflow bins.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first in-range bin.
     * @param hi Upper edge of the last in-range bin (must exceed lo).
     * @param bins Number of in-range bins (must be positive).
     */
    Histogram(double lo, double hi, size_t bins);

    /** Count one sample. */
    void add(double value);

    /** Number of in-range bins. */
    size_t bins() const { return counts_.size(); }

    /** Count in in-range bin i. */
    uint64_t binCount(size_t i) const;

    /** Inclusive lower edge of bin i. */
    double binLow(size_t i) const;

    /** Samples below the histogram range. */
    uint64_t underflow() const { return underflow_; }

    /** Samples at or above the histogram range. */
    uint64_t overflow() const { return overflow_; }

    /** Total samples including out-of-range ones. */
    uint64_t total() const { return total_; }

    /**
     * Value at the given quantile q in [0, 1], linearly interpolated
     * within the containing bin. Out-of-range mass is clamped to the
     * range edges.
     */
    double quantile(double q) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<uint64_t> counts_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
};

} // namespace nanobus

#endif // NANOBUS_UTIL_STATS_HH
