/**
 * @file
 * Deterministic synthetic fabric traffic.
 *
 * A TrafficSource yields FabricTransactions in non-decreasing cycle
 * order; SyntheticTraffic generates them from per-tile seeded Rng
 * streams (uniform / hotspot / neighbor destination patterns) with
 * no wall-clock, std::random_device, or thread-id input anywhere —
 * the same (topology, config) always produces the same transaction
 * stream, which is half of the fabric determinism contract
 * (docs/FABRIC.md); the other half is BusFabric's pool-size- and
 * pin-policy-independent execution.
 */

#ifndef NANOBUS_FABRIC_TRAFFIC_HH
#define NANOBUS_FABRIC_TRAFFIC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fabric/topology.hh"
#include "util/random.hh"

namespace nanobus {

/** One injected fabric transaction: a payload word travelling from
 *  tile `src` to tile `dst`, entering the fabric at `cycle`. */
struct FabricTransaction
{
    uint64_t cycle = 0;
    unsigned src = 0;
    unsigned dst = 0;
    uint32_t payload = 0;
};

/** Pull-based transaction stream, non-decreasing in cycle. */
class TrafficSource
{
  public:
    virtual ~TrafficSource() = default;
    /** Fill `out` with the next transaction; false at end. */
    virtual bool next(FabricTransaction &out) = 0;
};

/** Replays a pre-built transaction vector (tests, recorded loads). */
class VectorTrafficSource final : public TrafficSource
{
  public:
    explicit VectorTrafficSource(std::vector<FabricTransaction> txs)
        : txs_(std::move(txs))
    {
    }

    bool next(FabricTransaction &out) override
    {
        if (pos_ >= txs_.size())
            return false;
        out = txs_[pos_++];
        return true;
    }

  private:
    std::vector<FabricTransaction> txs_;
    size_t pos_ = 0;
};

/** Destination-selection pattern for SyntheticTraffic. */
enum class TrafficPattern : uint8_t
{
    /** Uniform random destination over all other tiles. */
    Uniform,
    /** A fraction of traffic targets one hot tile; the rest is
     *  uniform — the classic contended-resource load. */
    Hotspot,
    /** Destinations drawn from the source tile's topology
     *  neighbours — short-range, locality-heavy load. */
    Neighbor,
};

/** Stable lowercase name ("uniform", "hotspot", "neighbor"). */
const char *trafficPatternName(TrafficPattern pattern);

/** Inverse of trafficPatternName(); nullopt on unknown names. */
std::optional<TrafficPattern>
parseTrafficPattern(const std::string &name);

/** SyntheticTraffic configuration. */
struct TrafficConfig
{
    TrafficPattern pattern = TrafficPattern::Uniform;
    /** Per-tile injection probability per cycle, in (0, 1]. */
    double injection_rate = 0.1;
    /** Hotspot pattern: the hot destination tile. */
    unsigned hotspot_tile = 0;
    /** Hotspot pattern: fraction of injections aimed at the hot
     *  tile (the rest fall back to uniform). */
    double hotspot_fraction = 0.5;
    /** Stream seed; per-tile streams are derived from it. */
    uint64_t seed = 1;
    /** Total transactions to emit before end-of-stream. */
    uint64_t max_transactions = 10000;
};

/**
 * Seeded synthetic traffic over a topology. Each tile owns an
 * independent Rng stream derived from (seed, tile), so the emitted
 * stream — cycle-major, tile-minor within a cycle — is a pure
 * function of (topology, config) and in particular independent of
 * how the consuming fabric is threaded.
 */
class SyntheticTraffic final : public TrafficSource
{
  public:
    SyntheticTraffic(const FabricTopology &topology,
                     const TrafficConfig &config);

    bool next(FabricTransaction &out) override;

  private:
    /** Destination for an injection from `tile` using its stream. */
    unsigned pickDestination(unsigned tile);

    const FabricTopology &topology_;
    TrafficConfig config_;
    std::vector<Rng> streams_;
    uint64_t emitted_ = 0;
    uint64_t cycle_ = 0;
    unsigned next_tile_ = 0;
};

} // namespace nanobus

#endif // NANOBUS_FABRIC_TRAFFIC_HH
