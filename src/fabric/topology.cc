#include "fabric/topology.hh"

#include <algorithm>

#include "util/logging.hh"

namespace nanobus {

const char *
topologyKindName(TopologyKind kind)
{
    switch (kind) {
    case TopologyKind::Ring:
        return "ring";
    case TopologyKind::Mesh2D:
        return "mesh";
    case TopologyKind::Crossbar:
        return "crossbar";
    }
    return "unknown";
}

std::optional<TopologyKind>
parseTopologyKind(const std::string &name)
{
    if (name == "ring")
        return TopologyKind::Ring;
    if (name == "mesh")
        return TopologyKind::Mesh2D;
    if (name == "crossbar")
        return TopologyKind::Crossbar;
    return std::nullopt;
}

FabricTopology::FabricTopology(TopologyKind kind, unsigned rows,
                               unsigned cols)
    : kind_(kind), rows_(rows), cols_(cols), tiles_(rows * cols)
{
    if (rows_ == 0 || cols_ == 0)
        fatal("FabricTopology: %ux%u has no tiles", rows_, cols_);

    neighbors_.resize(tiles_);
    for (unsigned s = 0; s < tiles_; ++s) {
        std::vector<unsigned> &adj = neighbors_[s];
        switch (kind_) {
        case TopologyKind::Ring:
            if (tiles_ == 2) {
                adj.push_back(s ^ 1u);
            } else if (tiles_ > 2) {
                adj.push_back((s + tiles_ - 1) % tiles_);
                adj.push_back((s + 1) % tiles_);
            }
            break;
        case TopologyKind::Mesh2D: {
            const unsigned r = s / cols_;
            const unsigned c = s % cols_;
            if (r > 0)
                adj.push_back(s - cols_);
            if (c > 0)
                adj.push_back(s - 1);
            if (c + 1 < cols_)
                adj.push_back(s + 1);
            if (r + 1 < rows_)
                adj.push_back(s + cols_);
            break;
        }
        case TopologyKind::Crossbar:
            // All tiles are one hop apart electrically, but the
            // segments sit side by side physically: couple each to
            // its index neighbours, like wires in a wide bus.
            if (s > 0)
                adj.push_back(s - 1);
            if (s + 1 < tiles_)
                adj.push_back(s + 1);
            break;
        }
        std::sort(adj.begin(), adj.end());
    }
}

FabricTopology
FabricTopology::ring(unsigned tiles)
{
    return FabricTopology(TopologyKind::Ring, 1, tiles);
}

FabricTopology
FabricTopology::mesh(unsigned rows, unsigned cols)
{
    return FabricTopology(TopologyKind::Mesh2D, rows, cols);
}

FabricTopology
FabricTopology::crossbar(unsigned tiles)
{
    return FabricTopology(TopologyKind::Crossbar, 1, tiles);
}

void
FabricTopology::route(unsigned src, unsigned dst,
                      std::vector<unsigned> &out) const
{
    if (src >= tiles_ || dst >= tiles_)
        fatal("FabricTopology: route %u -> %u outside %u tiles",
              src, dst, tiles_);

    out.push_back(src);
    if (src == dst)
        return;

    switch (kind_) {
    case TopologyKind::Ring: {
        const unsigned forward = (dst + tiles_ - src) % tiles_;
        const unsigned backward = tiles_ - forward;
        // Shorter arc; the exact-half tie goes forward (increasing
        // tile index) so routing stays a pure function.
        const bool go_forward = forward <= backward;
        unsigned at = src;
        while (at != dst) {
            at = go_forward ? (at + 1) % tiles_
                            : (at + tiles_ - 1) % tiles_;
            out.push_back(at);
        }
        break;
    }
    case TopologyKind::Mesh2D: {
        // Dimension-ordered XY: walk columns first, then rows —
        // deadlock-free in real meshes and, here, a fixed total
        // order on hops.
        unsigned r = src / cols_;
        unsigned c = src % cols_;
        const unsigned dr = dst / cols_;
        const unsigned dc = dst % cols_;
        while (c != dc) {
            c = c < dc ? c + 1 : c - 1;
            out.push_back(r * cols_ + c);
        }
        while (r != dr) {
            r = r < dr ? r + 1 : r - 1;
            out.push_back(r * cols_ + c);
        }
        break;
    }
    case TopologyKind::Crossbar:
        out.push_back(dst);
        break;
    }
}

unsigned
FabricTopology::hopCount(unsigned src, unsigned dst) const
{
    if (src >= tiles_ || dst >= tiles_)
        fatal("FabricTopology: route %u -> %u outside %u tiles",
              src, dst, tiles_);
    if (src == dst)
        return 1;
    switch (kind_) {
    case TopologyKind::Ring: {
        const unsigned forward = (dst + tiles_ - src) % tiles_;
        return 1 + std::min(forward, tiles_ - forward);
    }
    case TopologyKind::Mesh2D: {
        const unsigned r = src / cols_, c = src % cols_;
        const unsigned dr = dst / cols_, dc = dst % cols_;
        return 1 + (r > dr ? r - dr : dr - r) +
               (c > dc ? c - dc : dc - c);
    }
    case TopologyKind::Crossbar:
        return 2;
    }
    return 0;
}

const std::vector<unsigned> &
FabricTopology::neighbors(unsigned s) const
{
    if (s >= tiles_)
        fatal("FabricTopology: segment %u outside %u segments", s,
              tiles_);
    return neighbors_[s];
}

} // namespace nanobus
