/**
 * @file
 * Trace-driven bus energy + thermal simulator (Sec 5 methodology).
 *
 * A BusSimulator models one physical address bus: each transmitted
 * address is encoded (the encoder's control lines occupy physical
 * bus positions), the per-line transition energies are accumulated,
 * and at every interval boundary (the paper uses 100K cycles) the
 * interval's per-line average power drives the thermal-RC network
 * one interval forward. Idle cycles — the bus holding its last
 * value — dissipate nothing but still advance the thermal network,
 * which is exactly the dynamic the paper studies in Fig 5.
 */

#ifndef NANOBUS_FABRIC_BUS_SIM_HH
#define NANOBUS_FABRIC_BUS_SIM_HH

#include <functional>
#include <memory>
#include <vector>

#include "encoding/encoder.hh"
#include "energy/bus_energy.hh"
#include "extraction/capmatrix.hh"
#include "tech/technology.hh"
#include "thermal/network.hh"
#include "util/result.hh"
#include "util/stats.hh"

namespace nanobus {

class SnapshotReader;
class SnapshotWriter;

/** One interval of the simulation time series (Fig 4 rows). */
struct IntervalSample
{
    /** Cycle at the end of this interval. */
    uint64_t end_cycle = 0;
    /** Transmissions during the interval. */
    uint64_t transmissions = 0;
    /** Energy dissipated in the interval, self + coupling. */
    EnergyBreakdown energy;
    /** Mean wire temperature at interval end. */
    Kelvin avg_temperature{};
    /** Hottest wire temperature at interval end. */
    Kelvin max_temperature{};
    /**
     * Average supply current drawn over the interval:
     * I = E / (Vdd * dt). The paper's Sec 5.3.1 observation is that
     * fluctuation of this quantity between intervals loads the
     * power-supply network inductively (L di/dt noise).
     */
    Amps avg_current{};
};

/**
 * One bus's slice of an ingest batch, in SoA layout: `cycles[k]` and
 * `addresses[k]` describe the k-th transmission routed to this bus
 * (cycles non-decreasing); `bus_words` is scratch the encode stage
 * fills. Addresses are widened to uint64_t so the encode stage
 * consumes them as spans without a conversion pass.
 */
struct BusBatch
{
    std::vector<uint64_t> cycles;
    std::vector<uint64_t> addresses;
    /** Encode-stage output; sized by BusSimulator::transmitBatch. */
    std::vector<uint64_t> bus_words;

    size_t size() const { return cycles.size(); }
    bool empty() const { return cycles.empty(); }

    void clear()
    {
        cycles.clear();
        addresses.clear();
    }

    void add(uint64_t cycle, uint32_t address)
    {
        cycles.push_back(cycle);
        addresses.push_back(address);
    }
};

/** Bus simulator configuration. */
struct BusSimConfig
{
    /** Payload width in bits (the paper studies 32-bit buses). */
    unsigned data_width = 32;
    /** Encoding scheme driving the bus. */
    EncodingScheme scheme = EncodingScheme::Unencoded;
    /**
     * Custom encoder factory; when set it overrides `scheme` —
     * used for encoders outside the EncodingScheme enum (e.g. a
     * parameterized SegmentedBusInvert). Must produce encoders for
     * `data_width` payloads.
     */
    std::function<std::unique_ptr<BusEncoder>()> encoder_factory;
    /** Physical wire length. */
    Meters wire_length{0.010};
    /** Coupling radius for the energy model (see BusEnergyModel). */
    unsigned coupling_radius = 64;
    /** Model repeater capacitance. */
    bool include_repeaters = true;
    /** Thermal interval length [cycles]; the paper uses 100K. */
    uint64_t interval_cycles = 100000;
    /**
     * Transition kernel for the energy model (see
     * BusEnergyModel::Config::kernel): Scalar is the per-word FP
     * oracle path, Packed the bit-packed integer-count kernel. A
     * given kernel is bit-identical to itself under any batch/pool
     * split; the two kernels agree to FP rounding, not bitwise.
     */
    TransitionKernel kernel = TransitionKernel::Scalar;
    /** Thermal network settings. delta_theta == 0 with a non-None
     *  stack mode is auto-filled from the Eq 7 model. */
    ThermalConfig thermal;
    /** Initial wire temperature; paper: 318.15 K. */
    Kelvin initial_temperature{318.15};
    /** Record the per-interval time series (disable for pure energy
     *  studies to save memory). */
    bool record_samples = true;
};

/** One simulated address bus. */
class BusSimulator
{
  public:
    /**
     * @param tech Technology node.
     * @param config Simulator configuration.
     * @param caps Capacitance structure sized to the *physical* bus
     *             width (payload + control lines); pass nullptr to
     *             use the ITRS-calibrated analytical matrix.
     */
    BusSimulator(const TechnologyNode &tech, const BusSimConfig &config,
                 const CapacitanceMatrix *caps = nullptr);

    /** Physical bus width (payload + encoder control lines). */
    unsigned busWidth() const { return encoder_->busWidth(); }

    /** The encoder driving this bus. */
    const BusEncoder &encoder() const { return *encoder_; }

    /** The per-line energy model. */
    const BusEnergyModel &energyModel() const { return *energy_; }

    /** The thermal network. */
    const ThermalNetwork &thermalNetwork() const { return *thermal_; }

    /**
     * Transmit an address at the given cycle. Cycles must be
     * non-decreasing; gaps are idle cycles. A thin wrapper over
     * transmitBatch() with a batch of one.
     */
    void transmit(uint64_t cycle, uint32_t address);

    /**
     * Transmit a whole batch through the composable stages: the
     * encode stage maps `batch.addresses` to `batch.bus_words` in
     * one encodeBatch() call, then the energy/interval stage clocks
     * in maximal runs of words that share an open interval,
     * closing interval boundaries (and advancing the thermal
     * network) between runs. Bit-identical to one transmit() call
     * per record — including batches that straddle interval
     * boundaries and idle gaps inside the batch.
     */
    void transmitBatch(BusBatch &batch);

    /**
     * Advance simulated time to `cycle` (idle), closing any interval
     * boundaries crossed. Used to flush trailing idle time.
     */
    void advanceTo(uint64_t cycle);

    /**
     * Extra per-wire power [W/m] folded into every interval close
     * until changed — the lateral inter-segment coupling hand-off:
     * BusFabric recomputes it at each interval boundary from the
     * neighbouring segments' mean temperatures (docs/FABRIC.md).
     * Zero (the default) is bit-identical to a standalone simulator;
     * the term may be negative (heat flowing out to cooler
     * neighbours) — the thermal network treats it as a heat sink.
     */
    void setBoundaryPower(WattsPerMeter per_wire)
    {
        boundary_power_ = per_wire.raw();
    }

    /** Current inter-segment boundary power [W/m per wire]. */
    WattsPerMeter boundaryPower() const
    {
        return WattsPerMeter{boundary_power_};
    }

    /** Current simulated cycle. */
    uint64_t currentCycle() const { return current_cycle_; }

    /** Total transmissions so far. */
    uint64_t transmissions() const { return transmissions_; }

    /** Whole-run energy breakdown [J]. */
    const EnergyBreakdown &totalEnergy() const
    {
        return energy_->accumulatedBreakdown();
    }

    /** Whole-run per-line energies [J]. */
    const std::vector<double> &lineEnergies() const
    {
        return energy_->accumulatedLineEnergy();
    }

    /** Recorded interval time series. */
    const std::vector<IntervalSample> &samples() const
    {
        return samples_;
    }

    /** Statistics over per-interval average supply current [A]. */
    const RunningStats &currentStats() const { return current_; }

    /**
     * Statistics over |dI/dt| between consecutive intervals [A/s] —
     * the supply-noise proxy of Sec 5.3.1. Tracked even when sample
     * recording is off.
     */
    const RunningStats &didtStats() const { return didt_; }

    /**
     * Thermal anomalies detected and contained during the run
     * (temperature ceiling, divergence, non-finite states), stamped
     * with the interval-end cycle where they occurred. An empty
     * vector means every interval integrated cleanly.
     */
    const std::vector<ThermalFault> &thermalFaults() const
    {
        return thermal_faults_;
    }

    /**
     * Serialize the simulator's full mutable state — encoder,
     * energy accumulators, thermal nodes, interval bookkeeping, and
     * the recorded time series — into `w` (implemented in
     * fabric/bus_snapshot.cc; format documented in
     * docs/ROBUSTNESS.md).
     * Fails when the encoder does not support state capture.
     */
    [[nodiscard]] Status saveState(SnapshotWriter &w) const;

    /**
     * Restore state written by saveState() into an identically
     * configured simulator (same scheme, width, interval, thermal
     * setup). After a successful restore, further transmits are
     * bit-identical to a simulator that never stopped. The snapshot
     * records the encoder identity and bus shape; mismatches are
     * rejected with InvalidArgument. A failed restore leaves the
     * simulator partially updated — discard it and cold-start.
     */
    [[nodiscard]] Status restoreState(SnapshotReader &r);

  private:
    void closeInterval();

    const TechnologyNode &tech_;
    BusSimConfig config_;
    std::unique_ptr<BusEncoder> encoder_;
    std::unique_ptr<BusEnergyModel> energy_;
    std::unique_ptr<ThermalNetwork> thermal_;

    uint64_t current_cycle_ = 0;
    uint64_t interval_end_;
    uint64_t transmissions_ = 0;
    uint64_t interval_transmissions_ = 0;

    /** Per-line energy accumulated in the open interval [J]. */
    std::vector<double> interval_line_energy_;
    EnergyBreakdown interval_energy_;
    /** Scratch for the thermal power hand-off [W/m]. */
    std::vector<double> power_scratch_;

    std::vector<IntervalSample> samples_;
    std::vector<ThermalFault> thermal_faults_;
    RunningStats current_;
    RunningStats didt_;
    double last_interval_current_ = 0.0;
    bool have_last_current_ = false;
    /** Inter-segment coupling power [W/m per wire]; see
     *  setBoundaryPower(). Not serialized: BusFabric re-derives it
     *  every interval, and standalone snapshots keep it at zero. */
    double boundary_power_ = 0.0;
};

} // namespace nanobus

#endif // NANOBUS_FABRIC_BUS_SIM_HH
