#include "fabric/traffic.hh"

#include "util/logging.hh"

namespace nanobus {

const char *
trafficPatternName(TrafficPattern pattern)
{
    switch (pattern) {
    case TrafficPattern::Uniform:
        return "uniform";
    case TrafficPattern::Hotspot:
        return "hotspot";
    case TrafficPattern::Neighbor:
        return "neighbor";
    }
    return "unknown";
}

std::optional<TrafficPattern>
parseTrafficPattern(const std::string &name)
{
    if (name == "uniform")
        return TrafficPattern::Uniform;
    if (name == "hotspot")
        return TrafficPattern::Hotspot;
    if (name == "neighbor")
        return TrafficPattern::Neighbor;
    return std::nullopt;
}

SyntheticTraffic::SyntheticTraffic(const FabricTopology &topology,
                                   const TrafficConfig &config)
    : topology_(topology), config_(config)
{
    if (!(config_.injection_rate > 0.0) ||
        config_.injection_rate > 1.0)
        fatal("SyntheticTraffic: injection rate %g outside (0, 1]",
              config_.injection_rate);
    if (config_.pattern == TrafficPattern::Hotspot &&
        config_.hotspot_tile >= topology_.numTiles())
        fatal("SyntheticTraffic: hotspot tile %u outside %u tiles",
              config_.hotspot_tile, topology_.numTiles());

    // One stream per tile, decorrelated through SplitMix64's seed
    // expansion; golden-ratio stepping keeps adjacent tiles from
    // sharing low-entropy seeds.
    streams_.reserve(topology_.numTiles());
    for (unsigned t = 0; t < topology_.numTiles(); ++t)
        streams_.emplace_back(config_.seed +
                              0x9e3779b97f4a7c15ull *
                                  (static_cast<uint64_t>(t) + 1));
}

unsigned
SyntheticTraffic::pickDestination(unsigned tile)
{
    Rng &rng = streams_[tile];
    const unsigned tiles = topology_.numTiles();
    switch (config_.pattern) {
    case TrafficPattern::Hotspot:
        if (rng.chance(config_.hotspot_fraction))
            return config_.hotspot_tile;
        break;
    case TrafficPattern::Neighbor: {
        const std::vector<unsigned> &adj = topology_.neighbors(tile);
        if (!adj.empty())
            return adj[static_cast<size_t>(rng.below(adj.size()))];
        return tile;
    }
    case TrafficPattern::Uniform:
        break;
    }
    // Uniform over the other tiles (hotspot misses fall through
    // here too); a single-tile fabric can only self-send.
    if (tiles == 1)
        return tile;
    const unsigned pick =
        static_cast<unsigned>(rng.below(tiles - 1));
    return pick >= tile ? pick + 1 : pick;
}

bool
SyntheticTraffic::next(FabricTransaction &out)
{
    if (emitted_ >= config_.max_transactions)
        return false;

    // Scan cycle-major, tile-minor: every tile flips its own
    // injection coin each cycle from its own stream, so the stream
    // is reproducible and tiles stay statistically independent.
    const unsigned tiles = topology_.numTiles();
    for (;;) {
        while (next_tile_ < tiles) {
            const unsigned tile = next_tile_++;
            if (!streams_[tile].chance(config_.injection_rate))
                continue;
            out.cycle = cycle_;
            out.src = tile;
            out.dst = pickDestination(tile);
            out.payload = static_cast<uint32_t>(
                streams_[tile].next() >> 32);
            ++emitted_;
            return true;
        }
        next_tile_ = 0;
        ++cycle_;
    }
}

} // namespace nanobus
