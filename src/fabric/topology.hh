/**
 * @file
 * Fabric topologies: tiles, their bus segments, deterministic
 * routing, and physical adjacency for lateral thermal coupling.
 *
 * The fabric follows the "bus as NoC" deployment: every tile owns
 * one bus segment (its local link into the fabric), so a 6x6 mesh
 * is 36 segments. A transaction from tile `src` to tile `dst`
 * traverses the segments of every tile along the route — source and
 * destination included — one hop per tile. Routing is a pure
 * function of (topology, src, dst): no arbitration, no congestion,
 * no randomness, which is what keeps fabric runs bit-identical at
 * every thread-pool size (docs/FABRIC.md).
 */

#ifndef NANOBUS_FABRIC_TOPOLOGY_HH
#define NANOBUS_FABRIC_TOPOLOGY_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace nanobus {

/** Fabric arrangement of bus segments. */
enum class TopologyKind : uint8_t
{
    /** Tiles on a cycle; shorter-arc routing, ties broken toward
     *  increasing tile index. */
    Ring,
    /** rows x cols grid; dimension-ordered XY routing (X first). */
    Mesh2D,
    /** Every tile pair directly connected: src and dst segments
     *  only. Thermal adjacency treats the segments as a parallel
     *  bundle (index neighbours). */
    Crossbar,
};

/** Stable lowercase name ("ring", "mesh", "crossbar"). */
const char *topologyKindName(TopologyKind kind);

/** Inverse of topologyKindName(); nullopt on unknown names. */
std::optional<TopologyKind> parseTopologyKind(const std::string &name);

/**
 * An immutable tile/segment graph. Tiles are numbered row-major for
 * meshes and 0..N-1 around the cycle for rings; segment i is tile
 * i's bus, so numSegments() == numTiles() for every kind.
 */
class FabricTopology
{
  public:
    /** A ring of `tiles` tiles (>= 1). */
    static FabricTopology ring(unsigned tiles);
    /** A rows x cols mesh (both >= 1). */
    static FabricTopology mesh(unsigned rows, unsigned cols);
    /** A fully connected crossbar of `tiles` tiles (>= 1). */
    static FabricTopology crossbar(unsigned tiles);

    TopologyKind kind() const { return kind_; }
    unsigned rows() const { return rows_; }
    unsigned cols() const { return cols_; }
    unsigned numTiles() const { return tiles_; }
    unsigned numSegments() const { return tiles_; }

    /**
     * Append the deterministic route from `src` to `dst` as segment
     * ids in traversal order (src's segment first, dst's last; a
     * self-send occupies just the source segment). Fatal on
     * out-of-range tiles.
     */
    void route(unsigned src, unsigned dst,
               std::vector<unsigned> &out) const;

    /** Hop count of route(src, dst) without materializing it. */
    unsigned hopCount(unsigned src, unsigned dst) const;

    /**
     * Physically adjacent segments of segment `s` (sorted, no
     * self-loops) — the neighbours its lateral thermal coupling
     * exchanges heat with. Mesh: the 4-neighbourhood; ring: the two
     * cycle neighbours; crossbar: index neighbours (the segments
     * routed as a parallel bundle).
     */
    const std::vector<unsigned> &neighbors(unsigned s) const;

  private:
    FabricTopology(TopologyKind kind, unsigned rows, unsigned cols);

    TopologyKind kind_;
    unsigned rows_;
    unsigned cols_;
    unsigned tiles_;
    /** neighbors_[s] = sorted adjacent segment ids. */
    std::vector<std::vector<unsigned>> neighbors_;
};

} // namespace nanobus

#endif // NANOBUS_FABRIC_TOPOLOGY_HH
