/**
 * @file
 * BusSimulator state serialization (fabric/bus_sim.hh). Field order
 * here *is* the wire format: change it and the sim layer's
 * kSnapshotFormatVersion must bump. The twin-bus container format
 * lives in sim/snapshot.cc; this file owns only the single-bus
 * payload both buses of a twin serialize through.
 */

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "fabric/bus_sim.hh"
#include "util/checkpoint.hh"

// Early-return plumbing for the field-by-field decode below.
#define NANOBUS_SNAP_TRY(expr)                                       \
    do {                                                             \
        Status try_status_ = (expr);                                 \
        if (!try_status_.ok())                                       \
            return try_status_;                                      \
    } while (0)

namespace nanobus {

namespace {

void
putStats(SnapshotWriter &w, const RunningStats &stats)
{
    const RunningStats::State s = stats.state();
    w.putU64(s.count);
    w.putF64(s.mean);
    w.putF64(s.m2);
    w.putF64(s.sum);
    w.putF64(s.min);
    w.putF64(s.max);
}

[[nodiscard]] Status
getStats(SnapshotReader &r, RunningStats &stats)
{
    RunningStats::State s;
    NANOBUS_SNAP_TRY(r.getU64(s.count));
    NANOBUS_SNAP_TRY(r.getF64(s.mean));
    NANOBUS_SNAP_TRY(r.getF64(s.m2));
    NANOBUS_SNAP_TRY(r.getF64(s.sum));
    NANOBUS_SNAP_TRY(r.getF64(s.min));
    NANOBUS_SNAP_TRY(r.getF64(s.max));
    stats.restore(s);
    return Status();
}

[[nodiscard]] Status
getF64Vector(SnapshotReader &r, std::vector<double> &out)
{
    uint64_t count = 0;
    NANOBUS_SNAP_TRY(r.getU64(count));
    out.assign(static_cast<size_t>(count), 0.0);
    for (double &value : out)
        NANOBUS_SNAP_TRY(r.getF64(value));
    return Status();
}

void
putF64Vector(SnapshotWriter &w, const std::vector<double> &values)
{
    w.putU64(values.size());
    for (double value : values)
        w.putF64(value);
}

[[nodiscard]] Status
getU64Vector(SnapshotReader &r, std::vector<uint64_t> &out)
{
    uint64_t count = 0;
    NANOBUS_SNAP_TRY(r.getU64(count));
    out.assign(static_cast<size_t>(count), 0);
    for (uint64_t &value : out)
        NANOBUS_SNAP_TRY(r.getU64(value));
    return Status();
}

void
putU64Vector(SnapshotWriter &w, const std::vector<uint64_t> &values)
{
    w.putU64(values.size());
    for (uint64_t value : values)
        w.putU64(value);
}

[[nodiscard]] Status
getI64Vector(SnapshotReader &r, std::vector<int64_t> &out)
{
    uint64_t count = 0;
    NANOBUS_SNAP_TRY(r.getU64(count));
    out.assign(static_cast<size_t>(count), 0);
    for (int64_t &value : out) {
        uint64_t bits = 0;
        NANOBUS_SNAP_TRY(r.getU64(bits));
        value = std::bit_cast<int64_t>(bits);
    }
    return Status();
}

void
putI64Vector(SnapshotWriter &w, const std::vector<int64_t> &values)
{
    w.putU64(values.size());
    for (int64_t value : values)
        w.putU64(std::bit_cast<uint64_t>(value));
}

} // namespace

Status
BusSimulator::saveState(SnapshotWriter &w) const
{
    // Identity guard: restore refuses a snapshot taken under a
    // different scheme, bus shape, interval length, or transition
    // kernel, since the serialized state would be meaningless there
    // (the two kernels persist different energy-state payloads).
    w.putString(encoder_->name());
    w.putU32(encoder_->busWidth());
    w.putU32(encoder_->dataWidth());
    w.putU64(config_.interval_cycles);
    w.putU32(static_cast<uint32_t>(config_.kernel));

    std::vector<uint64_t> words;
    if (!encoder_->captureState(words)) {
        return Status::failure(
            ErrorCode::InvalidArgument,
            "saveState: encoder '" + encoder_->name() +
                "' does not support state capture");
    }
    w.putU64(words.size());
    for (uint64_t word : words)
        w.putU64(word);

    // Energy model. Scalar persists the FP accumulators; Packed
    // persists the exact integer count state instead (energies are
    // re-derived from it on restore), int64 deviations carried
    // bit-cast through the u64 stream.
    if (config_.kernel == TransitionKernel::Packed) {
        const BusEnergyModel::PackedState state =
            energy_->capturePackedState();
        w.putU64(state.last_word);
        w.putU64(state.final_prev_word);
        w.putU64(state.cycles);
        putU64Vector(w, state.self);
        putI64Vector(w, state.pairs);
        putU64Vector(w, state.interval_self);
        putI64Vector(w, state.interval_pairs);
    } else {
        w.putU64(energy_->lastWord());
        w.putU64(energy_->cycles());
        putF64Vector(w, energy_->accumulatedLineEnergy());
        const EnergyBreakdown &acc = energy_->accumulatedBreakdown();
        w.putF64(acc.self.raw());
        w.putF64(acc.coupling.raw());
    }

    // Thermal network: node temperatures + divergence guard.
    const ThermalNetwork::SnapshotState thermal =
        thermal_->snapshotState();
    putF64Vector(w, thermal.nodes);
    w.putF64(thermal.last_max_temp);
    w.putU32(thermal.rising_streak);

    // Interval bookkeeping.
    w.putU64(current_cycle_);
    w.putU64(interval_end_);
    w.putU64(transmissions_);
    w.putU64(interval_transmissions_);
    putF64Vector(w, interval_line_energy_);
    w.putF64(interval_energy_.self.raw());
    w.putF64(interval_energy_.coupling.raw());

    // Recorded time series and contained anomalies.
    w.putU64(samples_.size());
    for (const IntervalSample &s : samples_) {
        w.putU64(s.end_cycle);
        w.putU64(s.transmissions);
        w.putF64(s.energy.self.raw());
        w.putF64(s.energy.coupling.raw());
        w.putF64(s.avg_temperature.raw());
        w.putF64(s.max_temperature.raw());
        w.putF64(s.avg_current.raw());
    }
    w.putU64(thermal_faults_.size());
    for (const ThermalFault &fault : thermal_faults_) {
        w.putU32(static_cast<uint32_t>(fault.kind));
        w.putU32(fault.node);
        w.putF64(fault.temperature.raw());
        w.putU64(fault.cycle);
        w.putString(fault.message);
    }

    // Supply-current statistics (Sec 5.3.1 bookkeeping).
    putStats(w, current_);
    putStats(w, didt_);
    w.putF64(last_interval_current_);
    w.putBool(have_last_current_);
    return Status();
}

Status
BusSimulator::restoreState(SnapshotReader &r)
{
    std::string encoder_name;
    uint32_t bus_width = 0;
    uint32_t data_width = 0;
    uint64_t interval_cycles = 0;
    uint32_t kernel_tag = 0;
    NANOBUS_SNAP_TRY(r.getString(encoder_name));
    NANOBUS_SNAP_TRY(r.getU32(bus_width));
    NANOBUS_SNAP_TRY(r.getU32(data_width));
    NANOBUS_SNAP_TRY(r.getU64(interval_cycles));
    NANOBUS_SNAP_TRY(r.getU32(kernel_tag));
    if (encoder_name != encoder_->name() ||
        bus_width != encoder_->busWidth() ||
        data_width != encoder_->dataWidth() ||
        interval_cycles != config_.interval_cycles) {
        return Status::failure(
            ErrorCode::InvalidArgument,
            "restoreState: snapshot is for encoder '" + encoder_name +
                "' (" + std::to_string(bus_width) + "-wire bus, " +
                std::to_string(interval_cycles) +
                "-cycle intervals) but this simulator runs '" +
                encoder_->name() + "' (" +
                std::to_string(encoder_->busWidth()) + "-wire bus, " +
                std::to_string(config_.interval_cycles) +
                "-cycle intervals)");
    }
    if (kernel_tag !=
        static_cast<uint32_t>(config_.kernel)) {
        return Status::failure(
            ErrorCode::InvalidArgument,
            "restoreState: snapshot was taken under the '" +
                std::string(transitionKernelName(
                    static_cast<TransitionKernel>(kernel_tag))) +
                "' transition kernel but this simulator runs '" +
                transitionKernelName(config_.kernel) + "'");
    }

    uint64_t word_count = 0;
    NANOBUS_SNAP_TRY(r.getU64(word_count));
    std::vector<uint64_t> words(static_cast<size_t>(word_count), 0);
    for (uint64_t &word : words)
        NANOBUS_SNAP_TRY(r.getU64(word));
    if (!encoder_->restoreState(words)) {
        return Status::failure(
            ErrorCode::InvalidArgument,
            "restoreState: encoder '" + encoder_->name() +
                "' rejected " + std::to_string(word_count) +
                " state words");
    }

    if (config_.kernel == TransitionKernel::Packed) {
        BusEnergyModel::PackedState state;
        NANOBUS_SNAP_TRY(r.getU64(state.last_word));
        NANOBUS_SNAP_TRY(r.getU64(state.final_prev_word));
        NANOBUS_SNAP_TRY(r.getU64(state.cycles));
        NANOBUS_SNAP_TRY(getU64Vector(r, state.self));
        NANOBUS_SNAP_TRY(getI64Vector(r, state.pairs));
        NANOBUS_SNAP_TRY(getU64Vector(r, state.interval_self));
        NANOBUS_SNAP_TRY(getI64Vector(r, state.interval_pairs));
        NANOBUS_SNAP_TRY(energy_->restorePackedState(state));
    } else {
        uint64_t last_word = 0;
        uint64_t cycles = 0;
        std::vector<double> acc_line;
        EnergyBreakdown acc;
        double acc_self = 0.0;
        double acc_coupling = 0.0;
        NANOBUS_SNAP_TRY(r.getU64(last_word));
        NANOBUS_SNAP_TRY(r.getU64(cycles));
        NANOBUS_SNAP_TRY(getF64Vector(r, acc_line));
        NANOBUS_SNAP_TRY(r.getF64(acc_self));
        NANOBUS_SNAP_TRY(r.getF64(acc_coupling));
        acc.self = Joules{acc_self};
        acc.coupling = Joules{acc_coupling};
        NANOBUS_SNAP_TRY(energy_->restoreAccumulation(
            last_word, acc_line, acc, cycles));
    }

    ThermalNetwork::SnapshotState thermal;
    NANOBUS_SNAP_TRY(getF64Vector(r, thermal.nodes));
    NANOBUS_SNAP_TRY(r.getF64(thermal.last_max_temp));
    NANOBUS_SNAP_TRY(r.getU32(thermal.rising_streak));
    NANOBUS_SNAP_TRY(thermal_->restoreSnapshotState(thermal));

    NANOBUS_SNAP_TRY(r.getU64(current_cycle_));
    NANOBUS_SNAP_TRY(r.getU64(interval_end_));
    NANOBUS_SNAP_TRY(r.getU64(transmissions_));
    NANOBUS_SNAP_TRY(r.getU64(interval_transmissions_));
    NANOBUS_SNAP_TRY(getF64Vector(r, interval_line_energy_));
    if (interval_line_energy_.size() != busWidth()) {
        return Status::failure(
            ErrorCode::InvalidArgument,
            "restoreState: " +
                std::to_string(interval_line_energy_.size()) +
                " interval accumulators for a " +
                std::to_string(busWidth()) + "-wire bus");
    }
    double interval_self = 0.0;
    double interval_coupling = 0.0;
    NANOBUS_SNAP_TRY(r.getF64(interval_self));
    NANOBUS_SNAP_TRY(r.getF64(interval_coupling));
    interval_energy_.self = Joules{interval_self};
    interval_energy_.coupling = Joules{interval_coupling};

    uint64_t sample_count = 0;
    NANOBUS_SNAP_TRY(r.getU64(sample_count));
    samples_.clear();
    samples_.reserve(static_cast<size_t>(sample_count));
    for (uint64_t i = 0; i < sample_count; ++i) {
        IntervalSample sample;
        double energy_self = 0.0;
        double energy_coupling = 0.0;
        double avg_temp = 0.0;
        double max_temp = 0.0;
        double avg_current = 0.0;
        NANOBUS_SNAP_TRY(r.getU64(sample.end_cycle));
        NANOBUS_SNAP_TRY(r.getU64(sample.transmissions));
        NANOBUS_SNAP_TRY(r.getF64(energy_self));
        NANOBUS_SNAP_TRY(r.getF64(energy_coupling));
        NANOBUS_SNAP_TRY(r.getF64(avg_temp));
        NANOBUS_SNAP_TRY(r.getF64(max_temp));
        NANOBUS_SNAP_TRY(r.getF64(avg_current));
        sample.energy.self = Joules{energy_self};
        sample.energy.coupling = Joules{energy_coupling};
        sample.avg_temperature = Kelvin{avg_temp};
        sample.max_temperature = Kelvin{max_temp};
        sample.avg_current = Amps{avg_current};
        samples_.push_back(sample);
    }

    uint64_t fault_count = 0;
    NANOBUS_SNAP_TRY(r.getU64(fault_count));
    thermal_faults_.clear();
    thermal_faults_.reserve(static_cast<size_t>(fault_count));
    for (uint64_t i = 0; i < fault_count; ++i) {
        ThermalFault fault;
        uint32_t kind = 0;
        double temperature = 0.0;
        NANOBUS_SNAP_TRY(r.getU32(kind));
        if (kind >
            static_cast<uint32_t>(ThermalFault::Kind::Divergence)) {
            return Status::failure(
                ErrorCode::ParseError,
                "restoreState: unknown thermal-fault kind " +
                    std::to_string(kind));
        }
        fault.kind = static_cast<ThermalFault::Kind>(kind);
        NANOBUS_SNAP_TRY(r.getU32(fault.node));
        NANOBUS_SNAP_TRY(r.getF64(temperature));
        fault.temperature = Kelvin{temperature};
        NANOBUS_SNAP_TRY(r.getU64(fault.cycle));
        NANOBUS_SNAP_TRY(r.getString(fault.message));
        thermal_faults_.push_back(std::move(fault));
    }

    NANOBUS_SNAP_TRY(getStats(r, current_));
    NANOBUS_SNAP_TRY(getStats(r, didt_));
    NANOBUS_SNAP_TRY(r.getF64(last_interval_current_));
    NANOBUS_SNAP_TRY(r.getBool(have_last_current_));
    return Status();
}

} // namespace nanobus
