#include "fabric/fabric.hh"

#include <algorithm>
#include <utility>

#include "util/contracts.hh"
#include "util/logging.hh"

namespace nanobus {

namespace {

FabricTopology
buildTopology(const FabricConfig &config)
{
    switch (config.topology) {
    case TopologyKind::Ring:
        return FabricTopology::ring(config.tiles);
    case TopologyKind::Mesh2D:
        return FabricTopology::mesh(config.rows, config.cols);
    case TopologyKind::Crossbar:
        return FabricTopology::crossbar(config.tiles);
    }
    fatal("BusFabric: unknown topology kind %u",
          static_cast<unsigned>(config.topology));
}

} // namespace

BusFabric::BusFabric(const TechnologyNode &tech,
                     const FabricConfig &config)
    : tech_(tech), config_(config), topology_(buildTopology(config))
{
    if (config_.segment_coupling &&
        config_.segment_resistance.raw() <= 0.0)
        fatal("BusFabric: segment resistance must be positive "
              "(got %g K*m/W)", config_.segment_resistance.raw());
    if (config_.group_size == 0)
        config_.group_size = 1;

    const unsigned n = topology_.numSegments();
    segments_.reserve(n);
    for (unsigned s = 0; s < n; ++s)
        segments_.push_back(
            std::make_unique<BusSimulator>(tech_, config_.segment));
    pending_.resize(n);
    cursor_.assign(n, 0);
    batch_scratch_.resize(n);
    temps_.assign(n, config_.segment.initial_temperature.raw());
}

const BusSimulator &
BusFabric::segment(unsigned s) const
{
    if (s >= segments_.size())
        fatal("BusFabric: segment %u outside %zu segments", s,
              segments_.size());
    return *segments_[s];
}

uint64_t
BusFabric::ingest(TrafficSource &source, uint64_t &hops,
                  uint64_t &last_cycle)
{
    uint64_t transactions = 0;
    uint64_t prev_cycle = resume_cycle_;
    FabricTransaction tx;
    while (source.next(tx)) {
        if (tx.cycle < prev_cycle)
            fatal("BusFabric: transaction cycle %llu moves backwards "
                  "from %llu",
                  static_cast<unsigned long long>(tx.cycle),
                  static_cast<unsigned long long>(prev_cycle));
        prev_cycle = tx.cycle;

        route_scratch_.clear();
        topology_.route(tx.src, tx.dst, route_scratch_);
        uint64_t hop_cycle = tx.cycle;
        for (unsigned seg : route_scratch_) {
            pending_[seg].push_back(
                PendingWord{hop_cycle, tx.payload});
            hop_cycle += config_.hop_latency_cycles;
        }
        const uint64_t arrival =
            tx.cycle + config_.hop_latency_cycles *
                           (route_scratch_.size() - 1);
        last_cycle = std::max(last_cycle, arrival);
        hops += route_scratch_.size();
        ++transactions;
    }
    return transactions;
}

uint64_t
BusFabric::stepSegments(size_t begin, size_t end)
{
    const bool coupled =
        config_.segment_coupling && segments_.size() > 1;
    uint64_t words = 0;
    for (size_t s = begin; s < end; ++s) {
        BusSimulator &bus = *segments_[s];

        if (coupled) {
            // Heat flowing in from adjacent segments, against the
            // temperature snapshot frozen at the epoch boundary
            // (Jacobi exchange: antisymmetric per pair, so the
            // fabric-wide sum is zero and order cannot matter).
            double inflow = 0.0;
            for (unsigned j : topology_.neighbors(
                     static_cast<unsigned>(s)))
                inflow += (temps_[j] - temps_[s]) /
                          config_.segment_resistance.raw();
            bus.setBoundaryPower(
                WattsPerMeter{inflow / bus.busWidth()});
        }

        const std::vector<PendingWord> &pend = pending_[s];
        size_t &cur = cursor_[s];
        BusBatch &batch = batch_scratch_[s];
        batch.clear();
        while (cur < pend.size() && pend[cur].cycle < window_end_) {
            batch.add(pend[cur].cycle, pend[cur].payload);
            ++cur;
        }
        if (!batch.empty())
            bus.transmitBatch(batch);
        bus.advanceTo(advance_to_);
        words += batch.size();
    }
    return words;
}

Result<FabricRunStats>
BusFabric::run(TrafficSource &source, exec::ThreadPool &pool)
{
    const unsigned n = topology_.numSegments();
    for (unsigned s = 0; s < n; ++s) {
        pending_[s].clear();
        cursor_[s] = 0;
    }

    FabricRunStats stats;
    stats.last_cycle = resume_cycle_;
    stats.transactions =
        ingest(source, stats.hops, stats.last_cycle);
    stats.exec.threads = pool.size();
    pool.fillPlacement(stats.exec);
    if (stats.transactions == 0)
        return stats;

    // Routed hop cycles are not globally sorted (a long route
    // injected early lands words after a short route injected
    // late), but each segment's queue sorts independently; the
    // pre-sort order is the deterministic ingest order, so
    // stable_sort fixes a total order.
    exec::parallelFor(
        pool, n,
        [&](size_t begin, size_t end) {
            for (size_t s = begin; s < end; ++s)
                std::stable_sort(
                    pending_[s].begin(), pending_[s].end(),
                    [](const PendingWord &a, const PendingWord &b) {
                        return a.cycle < b.cycle;
                    });
        },
        1);

    // One SweepRunner job per segment group; the partition is a
    // pure function of (segment count, group_size), never of the
    // pool, and every group touches only its own segments plus the
    // shared read-only temperature snapshot.
    std::vector<exec::FabricGroupJob> jobs;
    for (size_t begin = 0; begin < n; begin += config_.group_size) {
        const size_t end =
            std::min<size_t>(begin + config_.group_size, n);
        exec::FabricGroupJob job;
        job.label = "seg" + std::to_string(begin) + "-" +
                    std::to_string(end - 1);
        job.body = [this, begin, end]() -> Result<FabricGroupReport> {
            FabricGroupReport report;
            report.words = stepSegments(begin, end);
            return report;
        };
        jobs.push_back(std::move(job));
    }

    const exec::FabricGroupRunner runner(pool);
    const uint64_t interval = config_.segment.interval_cycles;
    // Segments all share interval_cycles, so they cross interval
    // boundaries in lockstep; epochs resume at the first boundary
    // the previous run() left unclosed.
    uint64_t boundary = (resume_cycle_ / interval + 1) * interval;

    auto runEpoch = [&]() -> Status {
        for (unsigned s = 0; s < n; ++s)
            temps_[s] = segments_[s]
                            ->thermalNetwork()
                            .averageTemperature()
                            .raw();
        Result<exec::FabricGroupBatch> batch = runner.run(jobs);
        if (!batch.ok())
            return Status::failure(batch.error().code,
                                   batch.error().message);
        stats.exec.tasks_run += batch.value().exec.tasks_run;
        stats.exec.steals += batch.value().exec.steals;
        stats.exec.wall_ms += batch.value().exec.wall_ms;
        return Status();
    };

    while (boundary <= stats.last_cycle) {
        window_end_ = boundary;
        advance_to_ = boundary;
        Status stepped = runEpoch();
        if (!stepped.ok())
            return stepped.error();
        ++stats.epochs;
        boundary += interval;
    }

    // Trailing partial interval: feed the remaining words and stop
    // the clocks at the last hop cycle — exactly where a standalone
    // simulator's finish() would leave them; no interval closes, so
    // the boundary-power refresh is bookkeeping only.
    window_end_ = stats.last_cycle + 1;
    advance_to_ = stats.last_cycle;
    Status stepped = runEpoch();
    if (!stepped.ok())
        return stepped.error();

    for (unsigned s = 0; s < n; ++s) {
        NANOBUS_EXPECT(cursor_[s] == pending_[s].size(),
                       "BusFabric: segment %u left %zu unplayed "
                       "words", s, pending_[s].size() - cursor_[s]);
    }
    resume_cycle_ = stats.last_cycle;
    return stats;
}

SegmentSummary
BusFabric::summarize(unsigned s) const
{
    const BusSimulator &bus = segment(s);
    SegmentSummary summary;
    summary.segment = s;
    summary.transmissions = bus.transmissions();
    summary.energy = bus.totalEnergy();
    summary.avg_temperature =
        bus.thermalNetwork().averageTemperature();
    summary.max_temperature = bus.thermalNetwork().maxTemperature();
    summary.thermal_faults = bus.thermalFaults().size();
    return summary;
}

EnergyBreakdown
BusFabric::totalEnergy() const
{
    EnergyBreakdown total;
    for (const auto &bus : segments_)
        total += bus->totalEnergy();
    return total;
}

Kelvin
BusFabric::maxTemperature() const
{
    Kelvin hottest = segments_[0]->thermalNetwork().maxTemperature();
    for (const auto &bus : segments_) {
        const Kelvin t = bus->thermalNetwork().maxTemperature();
        if (t.raw() > hottest.raw())
            hottest = t;
    }
    return hottest;
}

size_t
BusFabric::thermalFaultCount() const
{
    size_t count = 0;
    for (const auto &bus : segments_)
        count += bus->thermalFaults().size();
    return count;
}

exec::SupervisedFabricJob
supervisedFabricRunJob(std::string label, const TechnologyNode &tech,
                       FabricConfig config, TrafficConfig traffic)
{
    exec::SupervisedFabricJob job;
    job.label = std::move(label);
    job.body = [&tech, config = std::move(config),
                traffic = std::move(traffic)](exec::JobContext &ctx)
        -> Result<FabricRunReport> {
        // Fresh fabric + traffic per attempt: a retried attempt
        // replays the identical stream against identical cold
        // state, so retries are bit-identical to first tries.
        BusFabric fabric(tech, config);
        SyntheticTraffic source(fabric.topology(), traffic);
        if (!ctx.pulse())
            return Result<FabricRunReport>::failure(
                ErrorCode::BudgetExhausted,
                "fabric run aborted before start");
        Result<FabricRunStats> stats =
            fabric.run(source, exec::ThreadPool::global());
        if (!stats.ok())
            return stats.error();
        if (!ctx.pulse())
            return Result<FabricRunReport>::failure(
                ErrorCode::BudgetExhausted,
                "fabric run aborted after completion");

        FabricRunReport report;
        report.stats = stats.takeValue();
        report.segments.reserve(fabric.numSegments());
        for (unsigned s = 0; s < fabric.numSegments(); ++s)
            report.segments.push_back(fabric.summarize(s));
        report.total_energy = fabric.totalEnergy();
        report.max_temperature = fabric.maxTemperature();
        report.thermal_faults = fabric.thermalFaultCount();
        return report;
    };
    return job;
}

} // namespace nanobus
