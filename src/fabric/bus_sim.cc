#include "fabric/bus_sim.hh"

#include <algorithm>
#include <cmath>
#include <span>

#include "tech/layer_stack.hh"
#include "thermal/interlayer.hh"
#include "util/contracts.hh"
#include "util/logging.hh"

namespace nanobus {

BusSimulator::BusSimulator(const TechnologyNode &tech,
                           const BusSimConfig &config,
                           const CapacitanceMatrix *caps)
    : tech_(tech), config_(config),
      encoder_(config.encoder_factory
                   ? config.encoder_factory()
                   : makeEncoder(config.scheme, config.data_width)),
      interval_end_(config.interval_cycles)
{
    if (config_.interval_cycles == 0)
        fatal("BusSimulator: interval length must be positive");
    if (!encoder_)
        fatal("BusSimulator: encoder factory returned null");
    if (encoder_->dataWidth() != config_.data_width)
        fatal("BusSimulator: encoder is for %u-bit payloads but the "
              "config says %u", encoder_->dataWidth(),
              config_.data_width);

    const unsigned bus_width = encoder_->busWidth();

    CapacitanceMatrix matrix = caps
        ? *caps
        : CapacitanceMatrix::analytical(tech, bus_width);
    if (matrix.size() != bus_width)
        fatal("BusSimulator: capacitance matrix is for %u wires but "
              "the physical bus has %u", matrix.size(), bus_width);

    BusEnergyModel::Config energy_config;
    energy_config.wire_length = config_.wire_length;
    energy_config.coupling_radius = config_.coupling_radius;
    energy_config.include_repeaters = config_.include_repeaters;
    energy_config.kernel = config_.kernel;
    energy_ = std::make_unique<BusEnergyModel>(tech, matrix,
                                               energy_config);

    ThermalConfig thermal_config = config_.thermal;
    if (thermal_config.stack_mode != StackMode::None &&
        thermal_config.delta_theta.raw() == 0.0) {
        MetalLayerStack stack(tech);
        thermal_config.delta_theta =
            InterLayerModel(tech, stack).deltaTheta();
    }
    thermal_ = std::make_unique<ThermalNetwork>(tech, bus_width,
                                                thermal_config);
    thermal_->reset(config_.initial_temperature);

    interval_line_energy_.assign(bus_width, 0.0);
    power_scratch_.assign(bus_width, 0.0);
}

void
BusSimulator::closeInterval()
{
    // The packed kernel bypasses the stepBatch interval spans; its
    // interval energies are derived here, at the one point they are
    // consumed, from the count deltas since the interval opened.
    if (config_.kernel == TransitionKernel::Packed) {
        energy_->intervalEnergy(interval_line_energy_,
                                interval_energy_);
    }

    // cycles / f_clk composes to seconds.
    const Seconds interval_seconds =
        static_cast<double>(config_.interval_cycles) /
        tech_.f_clk;

    // Average per-line power over the interval [W/m]; the per-line
    // energy buffer is raw, so divide by the raw J -> W/m factor.
    const double denom =
        (interval_seconds * config_.wire_length).raw();
    for (unsigned i = 0; i < busWidth(); ++i)
        power_scratch_[i] = interval_line_energy_[i] / denom;
    // Lateral inter-segment coupling (BusFabric hand-off). The
    // zero-guard keeps the standalone path bit-identical: the loop
    // below is skipped entirely, not merely adding +0.0.
    if (boundary_power_ != 0.0) {
        for (unsigned i = 0; i < busWidth(); ++i)
            power_scratch_[i] += boundary_power_;
    }
    std::vector<ThermalFault> faults =
        thermal_->advanceChecked(power_scratch_, interval_seconds);
    for (ThermalFault &fault : faults) {
        fault.cycle = interval_end_;
        thermal_faults_.push_back(std::move(fault));
    }

    // Supply-current profile (Sec 5.3.1): the charge for every
    // dissipated joule is drawn from the rails at Vdd; J / (V s)
    // composes to amps.
    const Amps avg_current =
        interval_energy_.total() / (tech_.vdd * interval_seconds);
    current_.add(avg_current.raw());
    if (have_last_current_) {
        didt_.add(std::fabs(avg_current.raw() -
                            last_interval_current_) /
                  interval_seconds.raw());
    }
    last_interval_current_ = avg_current.raw();
    have_last_current_ = true;

    if (config_.record_samples) {
        IntervalSample sample;
        sample.end_cycle = interval_end_;
        sample.transmissions = interval_transmissions_;
        sample.energy = interval_energy_;
        sample.avg_temperature = thermal_->averageTemperature();
        sample.max_temperature = thermal_->maxTemperature();
        sample.avg_current = avg_current;
        samples_.push_back(sample);
    }

    std::fill(interval_line_energy_.begin(),
              interval_line_energy_.end(), 0.0);
    interval_energy_ = EnergyBreakdown();
    interval_transmissions_ = 0;
    interval_end_ += config_.interval_cycles;
    if (config_.kernel == TransitionKernel::Packed)
        energy_->beginInterval();
}

void
BusSimulator::advanceTo(uint64_t cycle)
{
    if (cycle < current_cycle_)
        fatal("BusSimulator: cycle %llu moves backwards from %llu",
              static_cast<unsigned long long>(cycle),
              static_cast<unsigned long long>(current_cycle_));
    while (interval_end_ <= cycle)
        closeInterval();
    current_cycle_ = cycle;
}

void
BusSimulator::transmit(uint64_t cycle, uint32_t address)
{
    advanceTo(cycle);

    uint64_t data = address;
    uint64_t bus_word = 0;
    encoder_->encodeBatch(std::span<const uint64_t>(&data, 1),
                          std::span<uint64_t>(&bus_word, 1));
    energy_->stepBatch(std::span<const uint64_t>(&bus_word, 1),
                       interval_line_energy_, interval_energy_);
    ++transmissions_;
    ++interval_transmissions_;
}

void
BusSimulator::transmitBatch(BusBatch &batch)
{
    const size_t n = batch.size();
    NANOBUS_EXPECT(batch.addresses.size() == n,
                   "transmitBatch: %zu cycles but %zu addresses",
                   n, batch.addresses.size());
    if (n == 0)
        return;

    // Encode stage. Encoder state depends only on the address
    // sequence — never on interval or thermal state — so the whole
    // batch encodes in one pass before any interval bookkeeping.
    batch.bus_words.resize(n);
    encoder_->encodeBatch(batch.addresses, batch.bus_words);

    // Energy + interval stage: clock in maximal runs of records
    // that fall inside the same open interval; close boundaries
    // (thermal advance) between runs, exactly where the per-record
    // path would.
    size_t i = 0;
    while (i < n) {
        advanceTo(batch.cycles[i]);
        size_t j = i + 1;
        while (j < n && batch.cycles[j] < interval_end_) {
            if (batch.cycles[j] < batch.cycles[j - 1])
                fatal("BusSimulator: cycle %llu moves backwards "
                      "from %llu",
                      static_cast<unsigned long long>(
                          batch.cycles[j]),
                      static_cast<unsigned long long>(
                          batch.cycles[j - 1]));
            ++j;
        }
        energy_->stepBatch(
            std::span<const uint64_t>(batch.bus_words)
                .subspan(i, j - i),
            interval_line_energy_, interval_energy_);
        transmissions_ += j - i;
        interval_transmissions_ += j - i;
        current_cycle_ = batch.cycles[j - 1];
        i = j;
    }
}

} // namespace nanobus
