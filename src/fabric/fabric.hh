/**
 * @file
 * BusFabric — N bus segments in a NoC topology with routed traffic
 * and lateral inter-segment thermal coupling.
 *
 * Every tile of a FabricTopology owns one BusSimulator (encoder +
 * BusEnergyModel + ThermalNetwork — the paper's single-bus pipeline,
 * unchanged); a FabricTransaction becomes one bus word on each
 * segment along its deterministic route, `hop_latency_cycles` apart.
 * Simulation advances in interval-lockstep epochs: at each interval
 * boundary the fabric snapshots every segment's mean temperature,
 * then steps all segments through the next interval *independently*
 * and in parallel (sharded over the exec ThreadPool via
 * BasicSweepRunner, one job per segment group), each folding a
 * frozen inter-segment conductance term — heat exchanged with
 * physically adjacent segments, Jacobi-style — into its interval
 * thermal close.
 *
 * Determinism contract (docs/FABRIC.md): a fabric run is a pure
 * function of (technology, config, transaction stream). Segment
 * grouping, pool size, and pin policy affect wall-clock only — every
 * observable (energies, temperatures, samples, faults, statistics)
 * is bit-identical across them, and a single-segment fabric is
 * bit-identical to the same stream driven through a standalone
 * BusSimulator.
 */

#ifndef NANOBUS_FABRIC_FABRIC_HH
#define NANOBUS_FABRIC_FABRIC_HH

#include <memory>
#include <string>
#include <vector>

#include "exec/supervisor.hh"
#include "exec/sweep_runner.hh"
#include "exec/thread_pool.hh"
#include "fabric/bus_sim.hh"
#include "fabric/topology.hh"
#include "fabric/traffic.hh"

namespace nanobus {

/** BusFabric configuration. */
struct FabricConfig
{
    /** Fabric arrangement; segment count == tile count. */
    TopologyKind topology = TopologyKind::Mesh2D;
    /** Mesh shape (Mesh2D only). */
    unsigned rows = 6;
    unsigned cols = 6;
    /** Tile count (Ring / Crossbar only). */
    unsigned tiles = 16;
    /** Per-segment simulator configuration, applied uniformly; the
     *  shared interval_cycles is the fabric's epoch length. */
    BusSimConfig segment;
    /** Cycles a transaction spends per segment before entering the
     *  next one along its route. */
    uint64_t hop_latency_cycles = 1;
    /** Enable lateral heat exchange between adjacent segments. */
    bool segment_coupling = true;
    /**
     * Thermal resistance between adjacent segments' mean wire
     * temperatures [K·m/W]: each interval, segment i absorbs
     * (T_j - T_i) / R from every adjacent j, spread uniformly over
     * its wires. Pairwise antisymmetric, so the exchange conserves
     * heat by construction.
     */
    KelvinMetersPerWatt segment_resistance{50.0};
    /** Segments per SweepRunner job. Grouping never changes results
     *  — only scheduling granularity. */
    size_t group_size = 1;
};

/** Per-segment end-of-run rollup (the BENCH_fabric.json rows). */
struct SegmentSummary
{
    unsigned segment = 0;
    /** Bus words this segment transmitted (routed hops). */
    uint64_t transmissions = 0;
    EnergyBreakdown energy;
    Kelvin avg_temperature{};
    Kelvin max_temperature{};
    size_t thermal_faults = 0;
};

/** Aggregate outcome of one BusFabric::run. */
struct FabricRunStats
{
    /** Transactions ingested from the traffic source. */
    uint64_t transactions = 0;
    /** Segment traversals (sum of route lengths). */
    uint64_t hops = 0;
    /** Highest hop cycle — where every segment's clock ends. */
    uint64_t last_cycle = 0;
    /** Interval epochs stepped. */
    uint64_t epochs = 0;
    /** Pool counters accumulated over all epoch batches. */
    exec::ExecStats exec;
};

/**
 * Whole-fabric supervised report: everything a retried attempt must
 * reproduce from scratch, since the fabric itself is stateful.
 */
struct FabricRunReport
{
    exec::ExecStats exec;
    FabricRunStats stats;
    std::vector<SegmentSummary> segments;
    EnergyBreakdown total_energy;
    Kelvin max_temperature{};
    size_t thermal_faults = 0;
};

/** Payload of one segment-group shard within an epoch. */
struct FabricGroupReport
{
    exec::ExecStats exec;
    /** Bus words the group's segments clocked in this epoch. */
    uint64_t words = 0;
};

namespace exec {

/** Fabric instantiations of the generic execution layer. */
using FabricGroupJob = BasicSweepJob<FabricGroupReport>;
using FabricGroupBatch = BasicBatchReport<FabricGroupReport>;
using FabricGroupRunner = BasicSweepRunner<FabricGroupReport>;
using SupervisedFabricJob = BasicSupervisedJob<FabricRunReport>;
using SupervisedFabricReport = BasicSupervisedReport<FabricRunReport>;
using FabricSupervisor = BasicSupervisor<FabricRunReport>;

} // namespace exec

/** A topology of BusSimulator segments with routed traffic. */
class BusFabric
{
  public:
    BusFabric(const TechnologyNode &tech, const FabricConfig &config);

    const FabricTopology &topology() const { return topology_; }
    unsigned numSegments() const { return topology_.numSegments(); }

    /** Segment s's simulator (read-only; the fabric owns time). */
    const BusSimulator &segment(unsigned s) const;

    /**
     * Drain `source` (cycles must be non-decreasing), route every
     * transaction, and step all segments to the stream's last hop
     * cycle in interval-lockstep epochs sharded over `pool`. May be
     * called repeatedly; later calls continue simulated time (the
     * next stream's cycles must not precede the previous last
     * cycle). Fails only if a segment-group shard fails — contained
     * thermal faults degrade fidelity, not completion.
     */
    [[nodiscard]] Result<FabricRunStats>
    run(TrafficSource &source, exec::ThreadPool &pool);

    /** Per-segment rollup for reports. */
    SegmentSummary summarize(unsigned s) const;

    /** Whole-fabric energy across segments [J]. */
    EnergyBreakdown totalEnergy() const;

    /** Hottest wire temperature across segments. */
    Kelvin maxTemperature() const;

    /** Contained thermal faults across segments. */
    size_t thermalFaultCount() const;

  private:
    /** One routed hop waiting on a segment's pending queue. */
    struct PendingWord
    {
        uint64_t cycle = 0;
        uint32_t payload = 0;
    };

    /** Ingest + route the whole stream; returns transactions read
     *  and updates hops/last-cycle bookkeeping. */
    uint64_t ingest(TrafficSource &source, uint64_t &hops,
                    uint64_t &last_cycle);

    /** Step segments [begin, end): feed pending words below
     *  `window_end`, then advance to `advance_to`. */
    uint64_t stepSegments(size_t begin, size_t end);

    const TechnologyNode &tech_;
    FabricConfig config_;
    FabricTopology topology_;
    std::vector<std::unique_ptr<BusSimulator>> segments_;

    /** Routed-but-unplayed words, per segment, cycle-sorted before
     *  each run's epoch loop. */
    std::vector<std::vector<PendingWord>> pending_;
    std::vector<size_t> cursor_;
    /** Per-segment batch scratch; segment-exclusive, so group jobs
     *  touch disjoint entries. */
    std::vector<BusBatch> batch_scratch_;
    /** Mean segment temperatures frozen at the epoch boundary. */
    std::vector<double> temps_;
    /** Route scratch for ingest (single-threaded). */
    std::vector<unsigned> route_scratch_;

    /** Epoch window the group jobs currently execute. */
    uint64_t window_end_ = 0;
    uint64_t advance_to_ = 0;

    /** Where simulated time stands after previous run() calls. */
    uint64_t resume_cycle_ = 0;
};

/**
 * Supervised whole-run shard: constructs the fabric *and* its
 * synthetic traffic from scratch on every attempt (run-to-completion
 * retry safety), runs it — nested parallelism degrades to serial on
 * pool threads by policy — and rolls up the report.
 */
exec::SupervisedFabricJob
supervisedFabricRunJob(std::string label, const TechnologyNode &tech,
                       FabricConfig config, TrafficConfig traffic);

} // namespace nanobus

#endif // NANOBUS_FABRIC_FABRIC_HH
