#include "la/matrix.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace nanobus {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix
Matrix::uninitialized(size_t rows, size_t cols)
{
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    // resize() under the default-init allocator allocates without
    // writing: no page is touched until the first real store.
    m.data_.resize(rows * cols);
    return m;
}

Matrix
Matrix::identity(size_t n)
{
    Matrix m(n, n, 0.0);
    for (size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

double &
Matrix::at(size_t r, size_t c)
{
    if (r >= rows_ || c >= cols_)
        panic("Matrix::at: (%zu, %zu) out of %zux%zu", r, c, rows_, cols_);
    return data_[r * cols_ + c];
}

double
Matrix::at(size_t r, size_t c) const
{
    if (r >= rows_ || c >= cols_)
        panic("Matrix::at: (%zu, %zu) out of %zux%zu", r, c, rows_, cols_);
    return data_[r * cols_ + c];
}

std::vector<double>
Matrix::multiply(const std::vector<double> &x) const
{
    if (x.size() != cols_)
        panic("Matrix::multiply: vector size %zu != cols %zu",
              x.size(), cols_);
    std::vector<double> y(rows_, 0.0);
    for (size_t r = 0; r < rows_; ++r) {
        const double *row = rowPtr(r);
        double acc = 0.0;
        for (size_t c = 0; c < cols_; ++c)
            acc += row[c] * x[c];
        y[r] = acc;
    }
    return y;
}

Matrix
Matrix::transposed() const
{
    Matrix t(cols_, rows_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            t(c, r) = (*this)(r, c);
    return t;
}

double
Matrix::maxAbs() const
{
    double m = 0.0;
    for (double v : data_)
        m = std::max(m, std::fabs(v));
    return m;
}

double
Matrix::asymmetry() const
{
    if (rows_ != cols_)
        panic("Matrix::asymmetry: matrix is %zux%zu, not square",
              rows_, cols_);
    double worst = 0.0;
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = r + 1; c < cols_; ++c)
            worst = std::max(worst,
                             std::fabs((*this)(r, c) - (*this)(c, r)));
    return worst;
}

} // namespace nanobus
