#include "la/lu.hh"

#include <cmath>
#include <utility>

#include "util/logging.hh"

namespace nanobus {

LuFactorization::LuFactorization(Matrix a)
    : lu_(std::move(a))
{
    if (lu_.rows() != lu_.cols())
        fatal("LuFactorization: matrix is %zux%zu, not square",
              lu_.rows(), lu_.cols());
    const size_t n = lu_.rows();
    perm_.resize(n);
    for (size_t i = 0; i < n; ++i)
        perm_[i] = i;

    for (size_t k = 0; k < n; ++k) {
        // Partial pivoting: bring the largest |a_ik| to the diagonal.
        size_t pivot = k;
        double best = std::fabs(lu_(k, k));
        for (size_t r = k + 1; r < n; ++r) {
            double mag = std::fabs(lu_(r, k));
            if (mag > best) {
                best = mag;
                pivot = r;
            }
        }
        if (best == 0.0)
            fatal("LuFactorization: singular matrix (pivot %zu)", k);
        if (pivot != k) {
            for (size_t c = 0; c < n; ++c)
                std::swap(lu_(k, c), lu_(pivot, c));
            std::swap(perm_[k], perm_[pivot]);
            perm_sign_ = -perm_sign_;
        }
        const double diag = lu_(k, k);
        for (size_t r = k + 1; r < n; ++r) {
            double factor = lu_(r, k) / diag;
            lu_(r, k) = factor;
            if (factor == 0.0)
                continue;
            const double *row_k = lu_.rowPtr(k);
            double *row_r = lu_.rowPtr(r);
            for (size_t c = k + 1; c < n; ++c)
                row_r[c] -= factor * row_k[c];
        }
    }
}

std::vector<double>
LuFactorization::solve(const std::vector<double> &b) const
{
    const size_t n = order();
    if (b.size() != n)
        panic("LuFactorization::solve: rhs size %zu != order %zu",
              b.size(), n);

    // Forward substitution on the permuted RHS (L has unit diagonal).
    std::vector<double> x(n);
    for (size_t i = 0; i < n; ++i) {
        double acc = b[perm_[i]];
        const double *row = lu_.rowPtr(i);
        for (size_t j = 0; j < i; ++j)
            acc -= row[j] * x[j];
        x[i] = acc;
    }
    // Back substitution through U.
    for (size_t ii = n; ii-- > 0;) {
        double acc = x[ii];
        const double *row = lu_.rowPtr(ii);
        for (size_t j = ii + 1; j < n; ++j)
            acc -= row[j] * x[j];
        x[ii] = acc / row[ii];
    }
    return x;
}

Matrix
LuFactorization::solveMatrix(const Matrix &b) const
{
    if (b.rows() != order())
        panic("LuFactorization::solveMatrix: rhs has %zu rows, need %zu",
              b.rows(), order());
    Matrix x(b.rows(), b.cols());
    std::vector<double> column(b.rows());
    for (size_t c = 0; c < b.cols(); ++c) {
        for (size_t r = 0; r < b.rows(); ++r)
            column[r] = b(r, c);
        std::vector<double> solved = solve(column);
        for (size_t r = 0; r < b.rows(); ++r)
            x(r, c) = solved[r];
    }
    return x;
}

double
LuFactorization::determinant() const
{
    double det = static_cast<double>(perm_sign_);
    for (size_t i = 0; i < order(); ++i)
        det *= lu_(i, i);
    return det;
}

} // namespace nanobus
