#include "la/lu.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/faultinject.hh"
#include "util/logging.hh"

namespace nanobus {

namespace {

bool
allFinite(const std::vector<double> &v)
{
    for (double x : v) {
        if (!std::isfinite(x))
            return false;
    }
    return true;
}

} // anonymous namespace

LuFactorization::LuFactorization(Matrix a)
    : lu_(std::move(a))
{
    Status status = factor();
    if (!status.ok())
        fatal("LuFactorization: %s", status.error().message.c_str());
}

Result<LuFactorization>
LuFactorization::tryFactor(Matrix a)
{
    if (FaultInjector::active() &&
        FaultInjector::instance().fireCallFault(FaultSite::LuFactor))
        return Result<LuFactorization>::failure(
            ErrorCode::FaultInjected, "injected factorization failure");

    LuFactorization lu;
    lu.lu_ = std::move(a);
    Status status = lu.factor();
    if (!status.ok())
        return Result<LuFactorization>(status.error());
    return Result<LuFactorization>(std::move(lu));
}

Status
LuFactorization::factor()
{
    if (lu_.rows() != lu_.cols())
        return Status::failure(
            ErrorCode::InvalidArgument,
            "matrix is " + std::to_string(lu_.rows()) + "x" +
                std::to_string(lu_.cols()) + ", not square");
    const size_t n = lu_.rows();
    if (n == 0)
        return Status::failure(ErrorCode::InvalidArgument,
                               "matrix is empty");

    norm1_ = 0.0;
    double max_abs = 0.0;
    for (size_t c = 0; c < n; ++c) {
        double col_sum = 0.0;
        for (size_t r = 0; r < n; ++r) {
            double mag = std::fabs(lu_(r, c));
            if (!std::isfinite(mag))
                return Status::failure(ErrorCode::NonFinite,
                                       "matrix has a non-finite entry");
            col_sum += mag;
            if (mag > max_abs)
                max_abs = mag;
        }
        if (col_sum > norm1_)
            norm1_ = col_sum;
    }

    // Singularity to working precision, not exact zero: a pivot below
    // n * eps * max|a_ij| carries no trustworthy digits.
    const double pivot_tol = static_cast<double>(n) *
        std::numeric_limits<double>::epsilon() * max_abs;

    perm_.resize(n);
    for (size_t i = 0; i < n; ++i)
        perm_[i] = i;
    perm_sign_ = 1;
    rcond_ = -1.0;

    for (size_t k = 0; k < n; ++k) {
        // Partial pivoting: bring the largest |a_ik| to the diagonal.
        size_t pivot = k;
        double best = std::fabs(lu_(k, k));
        for (size_t r = k + 1; r < n; ++r) {
            double mag = std::fabs(lu_(r, k));
            if (mag > best) {
                best = mag;
                pivot = r;
            }
        }
        if (best <= pivot_tol)
            return Status::failure(
                ErrorCode::SingularMatrix,
                "singular matrix (pivot " + std::to_string(k) +
                    " magnitude " + std::to_string(best) +
                    " below tolerance)");
        if (pivot != k) {
            for (size_t c = 0; c < n; ++c)
                std::swap(lu_(k, c), lu_(pivot, c));
            std::swap(perm_[k], perm_[pivot]);
            perm_sign_ = -perm_sign_;
        }
        const double diag = lu_(k, k);
        for (size_t r = k + 1; r < n; ++r) {
            double factor = lu_(r, k) / diag;
            lu_(r, k) = factor;
            if (factor == 0.0)
                continue;
            const double *row_k = lu_.rowPtr(k);
            double *row_r = lu_.rowPtr(r);
            for (size_t c = k + 1; c < n; ++c)
                row_r[c] -= factor * row_k[c];
        }
    }
    return Status();
}

std::vector<double>
LuFactorization::solve(const std::vector<double> &b) const
{
    const size_t n = order();
    if (b.size() != n)
        panic("LuFactorization::solve: rhs size %zu != order %zu",
              b.size(), n);

    // Forward substitution on the permuted RHS (L has unit diagonal).
    std::vector<double> x(n);
    for (size_t i = 0; i < n; ++i) {
        double acc = b[perm_[i]];
        const double *row = lu_.rowPtr(i);
        for (size_t j = 0; j < i; ++j)
            acc -= row[j] * x[j];
        x[i] = acc;
    }
    // Back substitution through U.
    for (size_t ii = n; ii-- > 0;) {
        double acc = x[ii];
        const double *row = lu_.rowPtr(ii);
        for (size_t j = ii + 1; j < n; ++j)
            acc -= row[j] * x[j];
        x[ii] = acc / row[ii];
    }
    return x;
}

Result<std::vector<double>>
LuFactorization::trySolve(const std::vector<double> &b) const
{
    if (FaultInjector::active() &&
        FaultInjector::instance().fireCallFault(FaultSite::LuSolve))
        return Result<std::vector<double>>::failure(
            ErrorCode::FaultInjected, "injected solve failure");

    if (b.size() != order())
        return Result<std::vector<double>>::failure(
            ErrorCode::InvalidArgument,
            "rhs size " + std::to_string(b.size()) + " != order " +
                std::to_string(order()));
    if (!allFinite(b))
        return Result<std::vector<double>>::failure(
            ErrorCode::NonFinite, "rhs has a non-finite entry");

    std::vector<double> x = solve(b);
    if (!allFinite(x))
        return Result<std::vector<double>>::failure(
            ErrorCode::NonFinite,
            "solution overflowed (matrix effectively singular)");
    return Result<std::vector<double>>(std::move(x));
}

std::vector<double>
LuFactorization::solveTransposed(const std::vector<double> &b) const
{
    const size_t n = order();
    if (b.size() != n)
        panic("LuFactorization::solveTransposed: rhs size %zu != "
              "order %zu", b.size(), n);

    // PA = LU, so A^T = U^T L^T P and A^T x = b is solved by
    // U^T z = b (forward), L^T w = z (backward), x = P^T w.
    std::vector<double> z(n);
    for (size_t i = 0; i < n; ++i) {
        double acc = b[i];
        for (size_t j = 0; j < i; ++j)
            acc -= lu_(j, i) * z[j];
        z[i] = acc / lu_(i, i);
    }
    for (size_t ii = n; ii-- > 0;) {
        double acc = z[ii];
        for (size_t j = ii + 1; j < n; ++j)
            acc -= lu_(j, ii) * z[j];
        z[ii] = acc; // L^T has unit diagonal
    }
    std::vector<double> x(n);
    for (size_t i = 0; i < n; ++i)
        x[perm_[i]] = z[i];
    return x;
}

Matrix
LuFactorization::solveMatrix(const Matrix &b) const
{
    if (b.rows() != order())
        panic("LuFactorization::solveMatrix: rhs has %zu rows, need %zu",
              b.rows(), order());
    Matrix x(b.rows(), b.cols());
    std::vector<double> column(b.rows());
    for (size_t c = 0; c < b.cols(); ++c) {
        for (size_t r = 0; r < b.rows(); ++r)
            column[r] = b(r, c);
        std::vector<double> solved = solve(column);
        for (size_t r = 0; r < b.rows(); ++r)
            x(r, c) = solved[r];
    }
    return x;
}

double
LuFactorization::determinant() const
{
    double det = static_cast<double>(perm_sign_);
    for (size_t i = 0; i < order(); ++i)
        det *= lu_(i, i);
    return det;
}

double
LuFactorization::reciprocalCondition() const
{
    if (rcond_ >= 0.0)
        return rcond_;
    const size_t n = order();
    if (norm1_ == 0.0 || n == 0) {
        rcond_ = 0.0;
        return rcond_;
    }

    // Hager's 1-norm estimator for ||A^-1||_1: iterate x -> A^-1 x
    // with sign-vector refinement through the transposed solve.
    std::vector<double> x(n, 1.0 / static_cast<double>(n));
    double estimate = 0.0;
    for (int iter = 0; iter < 5; ++iter) {
        std::vector<double> y = solve(x);
        double y_norm = 0.0;
        for (double v : y)
            y_norm += std::fabs(v);
        if (!std::isfinite(y_norm)) {
            estimate = std::numeric_limits<double>::infinity();
            break;
        }
        if (iter > 0 && y_norm <= estimate)
            break;
        estimate = y_norm;

        std::vector<double> xi(n);
        for (size_t i = 0; i < n; ++i)
            xi[i] = y[i] >= 0.0 ? 1.0 : -1.0;
        std::vector<double> z = solveTransposed(xi);
        size_t j_max = 0;
        double z_max = 0.0;
        double zx = 0.0;
        for (size_t i = 0; i < n; ++i) {
            double mag = std::fabs(z[i]);
            if (mag > z_max) {
                z_max = mag;
                j_max = i;
            }
            zx += z[i] * x[i];
        }
        if (!std::isfinite(z_max) || z_max <= zx)
            break;
        std::fill(x.begin(), x.end(), 0.0);
        x[j_max] = 1.0;
    }

    rcond_ = estimate > 0.0 && std::isfinite(estimate)
        ? 1.0 / (norm1_ * estimate)
        : 0.0;
    return rcond_;
}

} // namespace nanobus
