/**
 * @file
 * LU factorization with partial pivoting and dense linear solves.
 *
 * The boundary-element extractor produces moderately sized dense
 * systems (a thousand-odd unknowns); LU with partial pivoting is exact
 * enough and simple enough for that regime.
 *
 * Two entry styles are offered. The constructor keeps the historical
 * contract — fatal() on a non-square or singular matrix — for callers
 * whose inputs are internally generated and must be valid. tryFactor()
 * and trySolve() return Result values instead, so batch drivers can
 * survive one ill-conditioned extraction without losing the sweep
 * (see docs/ROBUSTNESS.md). Singularity is decided by a *scaled*
 * pivot tolerance (n * eps * max|a_ij|), not an exact-zero test: a
 * pivot of 1e-18 in a matrix of O(1) entries is singular to working
 * precision even though it is not zero.
 */

#ifndef NANOBUS_LA_LU_HH
#define NANOBUS_LA_LU_HH

#include <vector>

#include "la/matrix.hh"
#include "util/result.hh"

namespace nanobus {

/**
 * LU factorization PA = LU of a square matrix, reusable across many
 * right-hand sides (the extractor solves one RHS per conductor).
 */
class LuFactorization
{
  public:
    /**
     * Factor `a` in place (a copy is taken). Calls fatal() if the
     * matrix is non-square or singular to working precision.
     */
    explicit LuFactorization(Matrix a);

    /**
     * Checked factorization: returns SingularMatrix/InvalidArgument
     * errors instead of terminating. The fault-injection site
     * FaultSite::LuFactor can force a failure here.
     */
    [[nodiscard]] static Result<LuFactorization> tryFactor(Matrix a);

    /** Order of the factored system. */
    size_t order() const { return lu_.rows(); }

    /** Solve A x = b for one right-hand side. */
    std::vector<double> solve(const std::vector<double> &b) const;

    /**
     * Checked solve: rejects size mismatches and non-finite inputs
     * or outputs with an Error instead of panicking. The
     * fault-injection site FaultSite::LuSolve can force a failure.
     */
    [[nodiscard]] Result<std::vector<double>> trySolve(
        const std::vector<double> &b) const;

    /** Solve the transposed system A^T x = b (used by the condition
     *  estimator; also generally useful for adjoint problems). */
    std::vector<double> solveTransposed(
        const std::vector<double> &b) const;

    /**
     * Solve A X = B column-by-column; returns X with B's shape.
     */
    Matrix solveMatrix(const Matrix &b) const;

    /** Determinant of A (product of pivots with sign). */
    double determinant() const;

    /** 1-norm of the original matrix A. */
    double norm1() const { return norm1_; }

    /**
     * Reciprocal 1-norm condition estimate 1 / (||A||_1 ||A^-1||_1)
     * using Hager's estimator (a handful of O(n^2) solves; computed
     * lazily and cached). 1 means perfectly conditioned, values near
     * machine epsilon mean solutions carry no trustworthy digits.
     */
    double reciprocalCondition() const;

  private:
    LuFactorization() = default;

    /** Shared pivoting elimination; `lu_` must hold the input. */
    Status factor();

    Matrix lu_;
    std::vector<size_t> perm_;
    int perm_sign_ = 1;
    double norm1_ = 0.0;
    mutable double rcond_ = -1.0; // cached; negative = not yet computed
};

} // namespace nanobus

#endif // NANOBUS_LA_LU_HH
