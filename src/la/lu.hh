/**
 * @file
 * LU factorization with partial pivoting and dense linear solves.
 *
 * The boundary-element extractor produces moderately sized dense
 * systems (a thousand-odd unknowns); LU with partial pivoting is exact
 * enough and simple enough for that regime.
 */

#ifndef NANOBUS_LA_LU_HH
#define NANOBUS_LA_LU_HH

#include <vector>

#include "la/matrix.hh"

namespace nanobus {

/**
 * LU factorization PA = LU of a square matrix, reusable across many
 * right-hand sides (the extractor solves one RHS per conductor).
 */
class LuFactorization
{
  public:
    /**
     * Factor `a` in place (a copy is taken). Calls fatal() if the
     * matrix is singular to working precision.
     */
    explicit LuFactorization(Matrix a);

    /** Order of the factored system. */
    size_t order() const { return lu_.rows(); }

    /** Solve A x = b for one right-hand side. */
    std::vector<double> solve(const std::vector<double> &b) const;

    /**
     * Solve A X = B column-by-column; returns X with B's shape.
     */
    Matrix solveMatrix(const Matrix &b) const;

    /** Determinant of A (product of pivots with sign). */
    double determinant() const;

  private:
    Matrix lu_;
    std::vector<size_t> perm_;
    int perm_sign_ = 1;
};

} // namespace nanobus

#endif // NANOBUS_LA_LU_HH
