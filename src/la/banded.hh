/**
 * @file
 * Structured sparse matrices for the thermal-RC solver: a tridiagonal
 * band, optionally *bordered* by one dense row/column pair (the shared
 * BEOL stack node every wire sinks into), with Thomas-algorithm
 * factor/solve.
 *
 * The thermal network's Jacobian is nearest-neighbor (lateral
 * resistances couple wire i only to i±1) plus, in StackMode::Dynamic,
 * one node coupled to *all* wires. Dense LU on that structure wastes
 * O(n^3) work and O(n^2) memory; the band form factors and solves in
 * O(n) of both, which is what makes 10k-wire buses steppable
 * (docs/THERMAL.md).
 *
 * Stability contract: factorization runs *without pivoting* (pivoting
 * would destroy the band). That is numerically safe exactly for the
 * diagonally dominant systems this layer exists for — conductance
 * matrices G and implicit-stepper operators (I − dt·A), both weakly
 * diagonally dominant M-matrices. Callers with general matrices must
 * use la/lu. A pivot collapsing below the same scaled tolerance
 * la/lu uses (n * eps * max|a_ij|) is still reported as singular.
 *
 * The entry styles mirror la/lu: the constructor keeps the fatal()
 * contract for internally generated inputs; tryFactor()/trySolve()
 * return Result values so batch drivers survive one bad system; and
 * reciprocalCondition() gives the same Hager 1-norm estimate.
 */

#ifndef NANOBUS_LA_BANDED_HH
#define NANOBUS_LA_BANDED_HH

#include <cstddef>
#include <vector>

#include "la/matrix.hh"
#include "util/result.hh"

namespace nanobus {

/**
 * Tridiagonal matrix of order n, optionally bordered by a dense last
 * row and column (order n+1 total). Storage is four O(n) arrays:
 *
 *     | d0 u0            c0 |        diag(i)   = a(i, i)
 *     | l0 d1 u1         c1 |        upper(i)  = a(i, i+1)
 *     |    l1 d2 u2      c2 |        lower(i)  = a(i+1, i)
 *     |       l2 d3      c3 |        borderCol(i) = a(i, n)
 *     | r0 r1 r2 r3      dc |        borderRow(i) = a(n, i)
 *                                    corner()     = a(n, n)
 *
 * Elements default to zero, so assembly only writes the couplings
 * that exist.
 */
class BandedMatrix
{
  public:
    /** Empty 0x0 matrix. */
    BandedMatrix() = default;

    /** Pure tridiagonal matrix of order n (no border). */
    static BandedMatrix tridiagonal(size_t n);

    /** Tridiagonal block of order n bordered by one dense row and
     *  column; total order n + 1. */
    static BandedMatrix bordered(size_t n);

    /** Total order (band + border node when present). */
    size_t order() const { return diag_.size() + (bordered_ ? 1 : 0); }

    /** Order of the tridiagonal block alone. */
    size_t bandOrder() const { return diag_.size(); }

    /** Whether a dense border row/column is present. */
    bool hasBorder() const { return bordered_; }

    /** Main diagonal of the band, a(i, i) for i < bandOrder(). */
    double &diag(size_t i) { return diag_[i]; }
    double diag(size_t i) const { return diag_[i]; }

    /** Superdiagonal a(i, i+1), i < bandOrder() - 1. */
    double &upper(size_t i) { return upper_[i]; }
    double upper(size_t i) const { return upper_[i]; }

    /** Subdiagonal a(i+1, i), i < bandOrder() - 1. */
    double &lower(size_t i) { return lower_[i]; }
    double lower(size_t i) const { return lower_[i]; }

    /** Border column a(i, n) (bordered matrices only). */
    double &borderCol(size_t i) { return border_col_[i]; }
    double borderCol(size_t i) const { return border_col_[i]; }

    /** Border row a(n, i) (bordered matrices only). */
    double &borderRow(size_t i) { return border_row_[i]; }
    double borderRow(size_t i) const { return border_row_[i]; }

    /** Corner a(n, n) (bordered matrices only). */
    double &corner() { return corner_; }
    double corner() const { return corner_; }

    /** y = A x; x.size() must equal order(). O(n). */
    void multiply(const std::vector<double> &x,
                  std::vector<double> &y) const;

    /** Dense copy (tests and validation only; O(n^2) memory). */
    Matrix toDense() const;

    /** 1-norm (maximum absolute column sum). */
    double norm1() const;

    /** Maximum absolute element. */
    double maxAbs() const;

  private:
    explicit BandedMatrix(size_t n, bool bordered);

    std::vector<double> diag_;
    std::vector<double> lower_;
    std::vector<double> upper_;
    std::vector<double> border_row_;
    std::vector<double> border_col_;
    double corner_ = 0.0;
    bool bordered_ = false;
};

/**
 * LU factorization of a BandedMatrix, reusable across many
 * right-hand sides (the implicit thermal stepper factors once per
 * interval and solves every step).
 *
 * Tridiagonal part: the Thomas algorithm, A = L U with unit-lower L
 * holding the elimination multipliers and U the updated diagonal plus
 * the untouched superdiagonal — O(n) to factor, O(n) per solve.
 *
 * Bordered part: block elimination through the Schur complement. For
 * A = [[T, u], [v^T, d]] with T tridiagonal, factor T, precompute
 * w = T^-1 u and wt = T^-T v, and s = d - v^T w; then each solve is
 * two O(n) band substitutions plus a rank-1 correction:
 *
 *     y = T^-1 b_head,  x_n = (b_n - v^T y) / s,  x_head = y - x_n w.
 */
class BandedFactorization
{
  public:
    /**
     * Factor `a` (a copy is taken). Calls fatal() if the matrix is
     * empty or singular to working precision — same contract as
     * LuFactorization's constructor.
     */
    explicit BandedFactorization(BandedMatrix a);

    /**
     * Checked factorization: returns SingularMatrix/InvalidArgument/
     * NonFinite errors instead of terminating. The fault-injection
     * site FaultSite::LuFactor can force a failure here, same as the
     * dense path.
     */
    [[nodiscard]] static Result<BandedFactorization> tryFactor(
        BandedMatrix a);

    /** Order of the factored system. */
    size_t order() const { return band_.order(); }

    /** Solve A x = b for one right-hand side. O(n). */
    std::vector<double> solve(const std::vector<double> &b) const;

    /**
     * Checked solve: rejects size mismatches and non-finite inputs
     * or outputs with an Error instead of panicking. The
     * fault-injection site FaultSite::LuSolve can force a failure.
     */
    [[nodiscard]] Result<std::vector<double>> trySolve(
        const std::vector<double> &b) const;

    /** Solve the transposed system A^T x = b (condition estimator). */
    std::vector<double> solveTransposed(
        const std::vector<double> &b) const;

    /** Determinant (product of Thomas pivots, times the Schur
     *  complement for bordered systems; no pivoting, so no sign). */
    double determinant() const;

    /** 1-norm of the original matrix A. */
    double norm1() const { return norm1_; }

    /**
     * Reciprocal 1-norm condition estimate, Hager's estimator —
     * identical semantics to LuFactorization::reciprocalCondition():
     * 1 is perfectly conditioned, values near machine epsilon mean
     * the solutions carry no trustworthy digits. O(n) per estimator
     * iteration; computed lazily and cached.
     */
    double reciprocalCondition() const;

  private:
    BandedFactorization() = default;

    Status factor();

    /** Band-only Thomas substitution, `x` sized bandOrder(). */
    void bandSolve(std::vector<double> &x) const;
    void bandSolveTransposed(std::vector<double> &x) const;

    /** Factored band: diag_ holds the U pivots, lower_ the L
     *  multipliers, upper_ the (unchanged) superdiagonal. */
    BandedMatrix band_;
    /** w = T^-1 u and wt = T^-T v (bordered only). */
    std::vector<double> border_w_;
    std::vector<double> border_wt_;
    /** Schur complement s = d - v^T w (bordered only). */
    double schur_ = 0.0;
    double norm1_ = 0.0;
    mutable double rcond_ = -1.0; // cached; negative = not computed
};

} // namespace nanobus

#endif // NANOBUS_LA_BANDED_HH
