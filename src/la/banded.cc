#include "la/banded.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/faultinject.hh"
#include "util/logging.hh"

namespace nanobus {

namespace {

bool
allFinite(const std::vector<double> &v)
{
    for (double x : v) {
        if (!std::isfinite(x))
            return false;
    }
    return true;
}

} // anonymous namespace

BandedMatrix::BandedMatrix(size_t n, bool bordered)
    : diag_(n, 0.0), lower_(n > 0 ? n - 1 : 0, 0.0),
      upper_(n > 0 ? n - 1 : 0, 0.0), bordered_(bordered)
{
    if (bordered_) {
        border_row_.assign(n, 0.0);
        border_col_.assign(n, 0.0);
    }
}

BandedMatrix
BandedMatrix::tridiagonal(size_t n)
{
    if (n == 0)
        fatal("BandedMatrix: order must be positive");
    return BandedMatrix(n, false);
}

BandedMatrix
BandedMatrix::bordered(size_t n)
{
    if (n == 0)
        fatal("BandedMatrix: band order must be positive");
    return BandedMatrix(n, true);
}

void
BandedMatrix::multiply(const std::vector<double> &x,
                       std::vector<double> &y) const
{
    const size_t n = bandOrder();
    if (x.size() != order())
        panic("BandedMatrix::multiply: vector size %zu != order %zu",
              x.size(), order());
    y.resize(order());
    for (size_t i = 0; i < n; ++i) {
        double acc = diag_[i] * x[i];
        if (i > 0)
            acc += lower_[i - 1] * x[i - 1];
        if (i + 1 < n)
            acc += upper_[i] * x[i + 1];
        if (bordered_)
            acc += border_col_[i] * x[n];
        y[i] = acc;
    }
    if (bordered_) {
        double acc = corner_ * x[n];
        for (size_t i = 0; i < n; ++i)
            acc += border_row_[i] * x[i];
        y[n] = acc;
    }
}

Matrix
BandedMatrix::toDense() const
{
    const size_t n = bandOrder();
    Matrix dense(order(), order(), 0.0);
    for (size_t i = 0; i < n; ++i) {
        dense(i, i) = diag_[i];
        if (i + 1 < n) {
            dense(i, i + 1) = upper_[i];
            dense(i + 1, i) = lower_[i];
        }
        if (bordered_) {
            dense(i, n) = border_col_[i];
            dense(n, i) = border_row_[i];
        }
    }
    if (bordered_)
        dense(n, n) = corner_;
    return dense;
}

double
BandedMatrix::norm1() const
{
    const size_t n = bandOrder();
    double norm = 0.0;
    for (size_t c = 0; c < n; ++c) {
        double col = std::fabs(diag_[c]);
        if (c > 0)
            col += std::fabs(upper_[c - 1]);
        if (c + 1 < n)
            col += std::fabs(lower_[c]);
        if (bordered_)
            col += std::fabs(border_row_[c]);
        norm = std::max(norm, col);
    }
    if (bordered_) {
        double col = std::fabs(corner_);
        for (size_t i = 0; i < n; ++i)
            col += std::fabs(border_col_[i]);
        norm = std::max(norm, col);
    }
    return norm;
}

double
BandedMatrix::maxAbs() const
{
    const size_t n = bandOrder();
    double peak = 0.0;
    for (size_t i = 0; i < n; ++i) {
        peak = std::max(peak, std::fabs(diag_[i]));
        if (i + 1 < n) {
            peak = std::max(peak, std::fabs(upper_[i]));
            peak = std::max(peak, std::fabs(lower_[i]));
        }
        if (bordered_) {
            peak = std::max(peak, std::fabs(border_row_[i]));
            peak = std::max(peak, std::fabs(border_col_[i]));
        }
    }
    if (bordered_)
        peak = std::max(peak, std::fabs(corner_));
    return peak;
}

BandedFactorization::BandedFactorization(BandedMatrix a)
{
    band_ = std::move(a);
    Status status = factor();
    if (!status.ok())
        fatal("BandedFactorization: %s",
              status.error().message.c_str());
}

Result<BandedFactorization>
BandedFactorization::tryFactor(BandedMatrix a)
{
    if (FaultInjector::active() &&
        FaultInjector::instance().fireCallFault(FaultSite::LuFactor))
        return Result<BandedFactorization>::failure(
            ErrorCode::FaultInjected, "injected factorization failure");

    BandedFactorization f;
    f.band_ = std::move(a);
    Status status = f.factor();
    if (!status.ok())
        return Result<BandedFactorization>(status.error());
    return Result<BandedFactorization>(std::move(f));
}

Status
BandedFactorization::factor()
{
    const size_t n = band_.bandOrder();
    if (n == 0)
        return Status::failure(ErrorCode::InvalidArgument,
                               "matrix is empty");

    // norm1()/maxAbs() fold through std::max, which *drops* NaNs
    // (max(x, NaN) == x), so probe every entry directly.
    bool finite = std::isfinite(band_.corner());
    for (size_t i = 0; finite && i < n; ++i) {
        finite = std::isfinite(band_.diag(i)) &&
            (i + 1 >= n || (std::isfinite(band_.upper(i)) &&
                            std::isfinite(band_.lower(i)))) &&
            (!band_.hasBorder() ||
             (std::isfinite(band_.borderRow(i)) &&
              std::isfinite(band_.borderCol(i))));
    }
    if (!finite)
        return Status::failure(ErrorCode::NonFinite,
                               "matrix has a non-finite entry");
    norm1_ = band_.norm1();
    const double max_abs = band_.maxAbs();
    // Same singularity criterion as la/lu: a pivot below
    // order * eps * max|a_ij| carries no trustworthy digits.
    const double pivot_tol = static_cast<double>(band_.order()) *
        std::numeric_limits<double>::epsilon() * max_abs;
    rcond_ = -1.0;

    // Thomas elimination on the band, no pivoting (header contract:
    // diagonally dominant inputs). diag_ becomes the U pivots,
    // lower_ the L multipliers; upper_ is untouched.
    for (size_t i = 0; i < n; ++i) {
        if (i > 0) {
            const double m = band_.lower(i - 1) / band_.diag(i - 1);
            band_.lower(i - 1) = m;
            band_.diag(i) -= m * band_.upper(i - 1);
        }
        if (std::fabs(band_.diag(i)) <= pivot_tol)
            return Status::failure(
                ErrorCode::SingularMatrix,
                "singular band (pivot " + std::to_string(i) +
                    " magnitude " +
                    std::to_string(std::fabs(band_.diag(i))) +
                    " below tolerance)");
    }

    if (band_.hasBorder()) {
        // w = T^-1 u (border column) and wt = T^-T v (border row),
        // then the Schur complement s = d - v^T w.
        border_w_.resize(n);
        border_wt_.resize(n);
        for (size_t i = 0; i < n; ++i) {
            border_w_[i] = band_.borderCol(i);
            border_wt_[i] = band_.borderRow(i);
        }
        bandSolve(border_w_);
        bandSolveTransposed(border_wt_);
        double vtw = 0.0;
        for (size_t i = 0; i < n; ++i)
            vtw += band_.borderRow(i) * border_w_[i];
        schur_ = band_.corner() - vtw;
        if (!std::isfinite(schur_))
            return Status::failure(ErrorCode::NonFinite,
                                   "Schur complement is non-finite");
        if (std::fabs(schur_) <= pivot_tol)
            return Status::failure(
                ErrorCode::SingularMatrix,
                "singular border (Schur complement magnitude " +
                    std::to_string(std::fabs(schur_)) +
                    " below tolerance)");
    }
    return Status();
}

void
BandedFactorization::bandSolve(std::vector<double> &x) const
{
    const size_t n = band_.bandOrder();
    // Forward through unit-lower L, then backward through U.
    for (size_t i = 1; i < n; ++i)
        x[i] -= band_.lower(i - 1) * x[i - 1];
    x[n - 1] /= band_.diag(n - 1);
    for (size_t ii = n - 1; ii-- > 0;)
        x[ii] = (x[ii] - band_.upper(ii) * x[ii + 1]) /
                band_.diag(ii);
}

void
BandedFactorization::bandSolveTransposed(std::vector<double> &x) const
{
    const size_t n = band_.bandOrder();
    // T^T = U^T L^T: forward through U^T, then backward through L^T.
    x[0] /= band_.diag(0);
    for (size_t i = 1; i < n; ++i)
        x[i] = (x[i] - band_.upper(i - 1) * x[i - 1]) /
               band_.diag(i);
    for (size_t ii = n - 1; ii-- > 0;)
        x[ii] -= band_.lower(ii) * x[ii + 1];
}

std::vector<double>
BandedFactorization::solve(const std::vector<double> &b) const
{
    const size_t n = band_.bandOrder();
    if (b.size() != order())
        panic("BandedFactorization::solve: rhs size %zu != order %zu",
              b.size(), order());

    std::vector<double> x(b.begin(), b.begin() +
                                         static_cast<ptrdiff_t>(n));
    bandSolve(x);
    if (band_.hasBorder()) {
        double vty = 0.0;
        for (size_t i = 0; i < n; ++i)
            vty += band_.borderRow(i) * x[i];
        const double xn = (b[n] - vty) / schur_;
        for (size_t i = 0; i < n; ++i)
            x[i] -= xn * border_w_[i];
        x.push_back(xn);
    }
    return x;
}

Result<std::vector<double>>
BandedFactorization::trySolve(const std::vector<double> &b) const
{
    if (FaultInjector::active() &&
        FaultInjector::instance().fireCallFault(FaultSite::LuSolve))
        return Result<std::vector<double>>::failure(
            ErrorCode::FaultInjected, "injected solve failure");

    if (b.size() != order())
        return Result<std::vector<double>>::failure(
            ErrorCode::InvalidArgument,
            "rhs size " + std::to_string(b.size()) + " != order " +
                std::to_string(order()));
    if (!allFinite(b))
        return Result<std::vector<double>>::failure(
            ErrorCode::NonFinite, "rhs has a non-finite entry");

    std::vector<double> x = solve(b);
    if (!allFinite(x))
        return Result<std::vector<double>>::failure(
            ErrorCode::NonFinite,
            "solution overflowed (matrix effectively singular)");
    return Result<std::vector<double>>(std::move(x));
}

std::vector<double>
BandedFactorization::solveTransposed(const std::vector<double> &b) const
{
    const size_t n = band_.bandOrder();
    if (b.size() != order())
        panic("BandedFactorization::solveTransposed: rhs size %zu != "
              "order %zu", b.size(), order());

    // A^T = [[T^T, v], [u^T, d]] shares the Schur complement:
    // s = d - v^T T^-1 u = d - u^T T^-T v.
    std::vector<double> x(b.begin(), b.begin() +
                                         static_cast<ptrdiff_t>(n));
    bandSolveTransposed(x);
    if (band_.hasBorder()) {
        double uty = 0.0;
        for (size_t i = 0; i < n; ++i)
            uty += band_.borderCol(i) * x[i];
        const double xn = (b[n] - uty) / schur_;
        for (size_t i = 0; i < n; ++i)
            x[i] -= xn * border_wt_[i];
        x.push_back(xn);
    }
    return x;
}

double
BandedFactorization::determinant() const
{
    double det = 1.0;
    for (size_t i = 0; i < band_.bandOrder(); ++i)
        det *= band_.diag(i);
    if (band_.hasBorder())
        det *= schur_;
    return det;
}

double
BandedFactorization::reciprocalCondition() const
{
    if (rcond_ >= 0.0)
        return rcond_;
    const size_t n = order();
    if (norm1_ == 0.0 || n == 0) {
        rcond_ = 0.0;
        return rcond_;
    }

    // Hager's 1-norm estimator for ||A^-1||_1, identical to the
    // dense la/lu implementation but with O(n) solves.
    std::vector<double> x(n, 1.0 / static_cast<double>(n));
    double estimate = 0.0;
    for (int iter = 0; iter < 5; ++iter) {
        std::vector<double> y = solve(x);
        double y_norm = 0.0;
        for (double v : y)
            y_norm += std::fabs(v);
        if (!std::isfinite(y_norm)) {
            estimate = std::numeric_limits<double>::infinity();
            break;
        }
        if (iter > 0 && y_norm <= estimate)
            break;
        estimate = y_norm;

        std::vector<double> xi(n);
        for (size_t i = 0; i < n; ++i)
            xi[i] = y[i] >= 0.0 ? 1.0 : -1.0;
        std::vector<double> z = solveTransposed(xi);
        size_t j_max = 0;
        double z_max = 0.0;
        double zx = 0.0;
        for (size_t i = 0; i < n; ++i) {
            double mag = std::fabs(z[i]);
            if (mag > z_max) {
                z_max = mag;
                j_max = i;
            }
            zx += z[i] * x[i];
        }
        if (!std::isfinite(z_max) || z_max <= zx)
            break;
        std::fill(x.begin(), x.end(), 0.0);
        x[j_max] = 1.0;
    }

    rcond_ = estimate > 0.0 && std::isfinite(estimate)
        ? 1.0 / (norm1_ * estimate)
        : 0.0;
    return rcond_;
}

} // namespace nanobus
