/**
 * @file
 * Dense row-major matrix with the operations the capacitance extractor
 * needs: element access, matrix-vector products, and basic norms.
 */

#ifndef NANOBUS_LA_MATRIX_HH
#define NANOBUS_LA_MATRIX_HH

#include <cstddef>
#include <vector>

namespace nanobus {

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** rows x cols matrix initialized to `fill`. */
    Matrix(size_t rows, size_t cols, double fill = 0.0);

    /** Identity matrix of order n. */
    static Matrix identity(size_t n);

    /** Number of rows. */
    size_t rows() const { return rows_; }

    /** Number of columns. */
    size_t cols() const { return cols_; }

    /** Mutable element access (bounds-checked via panic in debug use). */
    double &at(size_t r, size_t c);

    /** Const element access. */
    double at(size_t r, size_t c) const;

    /** Unchecked element access for hot loops. */
    double &operator()(size_t r, size_t c)
    {
        return data_[r * cols_ + c];
    }

    /** Unchecked const element access. */
    double operator()(size_t r, size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Pointer to the start of row r. */
    double *rowPtr(size_t r) { return data_.data() + r * cols_; }

    /** Const pointer to the start of row r. */
    const double *rowPtr(size_t r) const
    {
        return data_.data() + r * cols_;
    }

    /** y = A * x; x.size() must equal cols(). */
    std::vector<double> multiply(const std::vector<double> &x) const;

    /** Transposed copy. */
    Matrix transposed() const;

    /** Maximum absolute element. */
    double maxAbs() const;

    /** Largest absolute asymmetry |a_ij - a_ji| (square matrices). */
    double asymmetry() const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace nanobus

#endif // NANOBUS_LA_MATRIX_HH
