/**
 * @file
 * Dense row-major matrix with the operations the capacitance extractor
 * needs: element access, matrix-vector products, and basic norms.
 */

#ifndef NANOBUS_LA_MATRIX_HH
#define NANOBUS_LA_MATRIX_HH

#include <cstddef>
#include <memory>
#include <vector>

namespace nanobus {

namespace la_detail {

/**
 * Allocator whose value-construct is default-init: for doubles, a
 * no-op instead of zero-fill. Matrix::uninitialized uses it so the
 * backing pages are *allocated* but not *touched* on the constructing
 * thread — on NUMA hosts each page then faults onto the node of the
 * thread that first writes it (first-touch placement; see
 * docs/PARALLELISM.md). Everything else (copy, fill-construct) is
 * plain std::allocator behaviour.
 */
template <typename T>
struct DefaultInitAllocator : std::allocator<T>
{
    template <typename U>
    struct rebind
    {
        using other = DefaultInitAllocator<U>;
    };

    template <typename U>
    void construct(U *p)
    {
        ::new (static_cast<void *>(p)) U;
    }

    template <typename U, typename... Args>
    void construct(U *p, Args &&...args)
    {
        ::new (static_cast<void *>(p)) U(std::forward<Args>(args)...);
    }
};

} // namespace la_detail

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** rows x cols matrix initialized to `fill`. */
    Matrix(size_t rows, size_t cols, double fill = 0.0);

    /**
     * rows x cols matrix whose elements are NOT initialized — every
     * element is garbage until written. Only for callers that
     * provably write every element before any read (the parallel BEM
     * row assembly): skipping the zero-fill keeps the constructing
     * thread from first-touching pages that pool workers will own.
     */
    static Matrix uninitialized(size_t rows, size_t cols);

    /** Identity matrix of order n. */
    static Matrix identity(size_t n);

    /** Number of rows. */
    size_t rows() const { return rows_; }

    /** Number of columns. */
    size_t cols() const { return cols_; }

    /** Mutable element access (bounds-checked via panic in debug use). */
    double &at(size_t r, size_t c);

    /** Const element access. */
    double at(size_t r, size_t c) const;

    /** Unchecked element access for hot loops. */
    double &operator()(size_t r, size_t c)
    {
        return data_[r * cols_ + c];
    }

    /** Unchecked const element access. */
    double operator()(size_t r, size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Pointer to the start of row r. */
    double *rowPtr(size_t r) { return data_.data() + r * cols_; }

    /** Const pointer to the start of row r. */
    const double *rowPtr(size_t r) const
    {
        return data_.data() + r * cols_;
    }

    /** y = A * x; x.size() must equal cols(). */
    std::vector<double> multiply(const std::vector<double> &x) const;

    /** Transposed copy. */
    Matrix transposed() const;

    /** Maximum absolute element. */
    double maxAbs() const;

    /** Largest absolute asymmetry |a_ij - a_ji| (square matrices). */
    double asymmetry() const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    // Default-init allocator so uninitialized() can skip the
    // zero-fill; the (rows, cols, fill) constructor still value-fills
    // explicitly, so normal construction behaves as before.
    std::vector<double, la_detail::DefaultInitAllocator<double>> data_;
};

} // namespace nanobus

#endif // NANOBUS_LA_MATRIX_HH
