#include "exec/supervisor.hh"

#include <chrono>
#include <limits>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "util/faultinject.hh"
#include "util/random.hh"

namespace nanobus {
namespace exec {

namespace {

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start).count();
}

} // anonymous namespace

const char *
jobOutcomeName(JobOutcome outcome)
{
    switch (outcome) {
      case JobOutcome::Ok:          return "ok";
      case JobOutcome::Retried:     return "retried";
      case JobOutcome::TimedOut:    return "timed-out";
      case JobOutcome::Quarantined: return "quarantined";
    }
    return "unknown";
}

// ---------------------------------------------------------------- //
// JobContext

void
JobContext::start(double deadline_ms)
{
    deadline_ms_ = deadline_ms;
    start_ = Clock::now();
}

double
JobContext::elapsedMs() const
{
    return millisSince(start_);
}

bool
JobContext::shouldAbort()
{
    if (abort_.load(std::memory_order_acquire))
        return true;
    if (deadline_ms_ > 0.0 && elapsedMs() > deadline_ms_) {
        // Self-service deadline: at pool size 1 the attempt runs
        // inline on the monitor thread, so nobody else can flag the
        // overrun. The flag is one-way, exactly as a monitor abort.
        abort_.store(true, std::memory_order_release);
        return true;
    }
    return false;
}

bool
JobContext::pulse()
{
    heartbeats_.fetch_add(1, std::memory_order_relaxed);
    if (FaultInjector::active() &&
        FaultInjector::instance().fireCallFault(FaultSite::Stall)) {
        // Simulated hang: park until aborted — by the watchdog, or
        // by the self-deadline check where no monitor can run. The
        // sleep keeps the parked worker off the CPU; it publishes no
        // further heartbeats, exactly like a genuinely wedged shard.
        while (!shouldAbort())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return false;
    }
    return !shouldAbort();
}

// ---------------------------------------------------------------- //
// Supervisor

Supervisor::Supervisor(ThreadPool &pool)
    : Supervisor(pool, Options{})
{
}

Supervisor::Supervisor(ThreadPool &pool, Options options)
    : pool_(pool), options_(options)
{
}

double
Supervisor::retryDelayMs(const Options &options, size_t job,
                         unsigned retry)
{
    double bound = options.backoff_base_ms;
    for (unsigned i = 0; i < retry; ++i)
        bound *= options.backoff_factor;
    if (bound <= 0.0)
        return 0.0;
    // One independent stream per (job, retry): the delay depends on
    // the seed
    // and the job's position only, never on wall-clock or on what
    // other jobs did — rerunning a sweep replays the same backoffs.
    Rng rng(options.backoff_seed ^
            (0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(job) + 1)) ^
            (0xbf58476d1ce4e5b9ull * (static_cast<uint64_t>(retry) + 1)));
    return rng.uniform(0.0, bound);
}

SupervisedJob
Supervisor::fromSweepJob(SweepJob job)
{
    return SupervisedJob{
        std::move(job.label),
        [body = std::move(job.body)](JobContext &context)
            -> Result<SweepReport> {
            if (!context.pulse()) {
                return Result<SweepReport>::failure(
                    ErrorCode::BudgetExhausted,
                    "attempt aborted before the shard body ran");
            }
            Result<SweepReport> result = body();
            (void)context.pulse();
            return result;
        }};
}

SupervisedJob
Supervisor::traceSweepJob(std::string label, std::string trace_path,
                          const TechnologyNode &tech,
                          BusSimConfig config,
                          RobustSweepOptions sweep_options)
{
    return SupervisedJob{
        std::move(label),
        [trace_path = std::move(trace_path), &tech, config,
         sweep_options = std::move(sweep_options)](JobContext &context)
            -> Result<SweepReport> {
            if (!context.pulse()) {
                return Result<SweepReport>::failure(
                    ErrorCode::BudgetExhausted,
                    "attempt aborted before the shard body ran");
            }
            // Every attempt builds its reader and simulators from
            // scratch inside the sweep, so a retry starts pristine.
            Result<SweepReport> result = tryRobustTraceSweep(
                trace_path, tech, config, nullptr, sweep_options);
            (void)context.pulse();
            return result;
        }};
}

Result<SupervisedReport>
Supervisor::run(const std::vector<SupervisedJob> &jobs) const
{
    const auto t_start = Clock::now();
    const ExecCounters before = pool_.counters();
    const size_t n = jobs.size();
    const bool fail_fast = !options_.run_to_completion;

    SupervisedReport sup;
    sup.reports.resize(n);
    sup.records.resize(n);

    // Per-job supervision state. Only `attempt_done` (and the
    // JobContext atomics) cross threads: the worker writes the
    // attempt's result fields, then stores attempt_done with release
    // order; the monitor reads it with acquire before touching
    // anything else. Everything else is monitor-private.
    struct Slot
    {
        std::unique_ptr<JobContext> context;
        std::atomic<bool> attempt_done{false};
        std::optional<Error> error;
        std::optional<SweepReport> report;
        bool skipped = false;
        unsigned attempts = 0;
        bool running = false;
        bool waiting = false;
        bool finalized = false;
        Clock::time_point not_before{};
        std::vector<double> backoff_ms;
    };
    std::vector<Slot> slots(n);
    std::atomic<bool> cancel{false};
    size_t finalized = 0;

    auto startAttempt = [&](size_t i) {
        Slot &slot = slots[i];
        slot.waiting = false;
        slot.running = true;
        slot.error.reset();
        slot.report.reset();
        slot.skipped = false;
        slot.attempt_done.store(false, std::memory_order_relaxed);
        slot.context = std::make_unique<JobContext>();
        slot.context->start(options_.deadline_ms);
        ++slot.attempts;
        JobContext *context = slot.context.get();
        pool_.submit([&jobs, &slots, &cancel, fail_fast, i, context] {
            Slot &s = slots[i];
            if (fail_fast && cancel.load(std::memory_order_relaxed)) {
                // Mirror SweepRunner: shards not yet started at
                // cancellation never run and surface no error.
                s.skipped = true;
            } else {
                Result<SweepReport> result = jobs[i].body(*context);
                if (result.ok())
                    s.report = result.takeValue();
                else
                    s.error = result.error();
            }
            s.attempt_done.store(true, std::memory_order_release);
        });
    };

    auto finalize = [&](size_t i, JobOutcome outcome, Error error) {
        Slot &slot = slots[i];
        JobRecord &record = sup.records[i];
        record.outcome = outcome;
        record.error = std::move(error);
        slot.finalized = true;
        ++finalized;
        if (fail_fast && (outcome == JobOutcome::TimedOut ||
                          outcome == JobOutcome::Quarantined))
            cancel.store(true, std::memory_order_relaxed);
    };

    // Classify a completed attempt: collect the report, schedule a
    // backoff retry, or finalize the job. Monitor-thread only.
    auto collect = [&](size_t i) {
        Slot &slot = slots[i];
        slot.running = false;
        JobRecord &record = sup.records[i];
        record.attempts = slot.attempts;
        record.heartbeats = slot.context->heartbeats();
        record.backoff_ms = slot.backoff_ms;

        if (slot.skipped) {
            // Cancelled before it started (fail-fast); keep it out
            // of the surfaced-error scan below.
            finalize(i, JobOutcome::Quarantined,
                     Error{ErrorCode::BudgetExhausted,
                           "cancelled before the shard started"});
            return;
        }
        if (slot.context->aborted()) {
            // Deadline overrun is permanent: a stalled shard is not
            // I/O flakiness, and its partial work is untrusted.
            finalize(i, JobOutcome::TimedOut,
                     Error{ErrorCode::BudgetExhausted,
                           "deadline of " +
                               std::to_string(options_.deadline_ms) +
                               " ms exceeded after " +
                               std::to_string(record.heartbeats) +
                               " heartbeats"});
            return;
        }
        if (slot.report && options_.fault_on_thermal &&
            (!slot.report->instruction_faults.empty() ||
             !slot.report->data_faults.empty())) {
            const ThermalFault &fault =
                slot.report->instruction_faults.empty()
                    ? slot.report->data_faults.front()
                    : slot.report->instruction_faults.front();
            slot.error = Error{ErrorCode::ThermalRunaway,
                               fault.message.empty()
                                   ? std::string(thermalFaultKindName(
                                         fault.kind))
                                   : fault.message};
            slot.report.reset();
        }
        if (slot.report) {
            slot.report->exec.threads = pool_.size();
            pool_.fillPlacement(slot.report->exec);
            slot.report->exec.wall_ms = slot.context->elapsedMs();
            sup.reports[i] = std::move(*slot.report);
            finalize(i,
                     slot.attempts > 1 ? JobOutcome::Retried
                                       : JobOutcome::Ok,
                     Error{});
            return;
        }

        const Error &error = *slot.error;
        const unsigned retries_used = slot.attempts - 1;
        if (transientError(error.code) &&
            retries_used < options_.max_retries) {
            const double delay =
                retryDelayMs(options_, i, retries_used);
            slot.backoff_ms.push_back(delay);
            slot.waiting = true;
            slot.not_before = Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(delay));
            return;
        }
        finalize(i, JobOutcome::Quarantined, error);
    };

    for (size_t i = 0; i < n; ++i)
        startAttempt(i);

    // The monitor loop: the calling thread collects finished
    // attempts, flags deadline overruns, launches due retries, and
    // drains pool tasks in between (so it contributes work instead
    // of idling — and so size-1 pools make progress at all).
    while (finalized < n) {
        bool progressed = false;
        for (size_t i = 0; i < n; ++i) {
            Slot &slot = slots[i];
            if (slot.finalized)
                continue;
            if (slot.running) {
                if (slot.attempt_done.load(
                        std::memory_order_acquire)) {
                    collect(i);
                    progressed = true;
                } else if (options_.deadline_ms > 0.0 &&
                           !slot.context->aborted() &&
                           slot.context->elapsedMs() >
                               options_.deadline_ms) {
                    // Watchdog: the attempt observes the abort at
                    // its next pulse() and returns; collect()
                    // classifies it TimedOut once it does.
                    slot.context->abort();
                }
            } else if (slot.waiting) {
                if (fail_fast &&
                    cancel.load(std::memory_order_relaxed)) {
                    finalize(i, JobOutcome::Quarantined,
                             Error{ErrorCode::BudgetExhausted,
                                   "cancelled while awaiting retry"});
                    slots[i].skipped = true;
                    progressed = true;
                } else if (Clock::now() >= slot.not_before) {
                    startAttempt(i);
                    progressed = true;
                }
            }
        }
        if (finalized >= n)
            break;
        if (!progressed && !pool_.tryRunOneTask()) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(
                    options_.watchdog_poll_ms));
        }
    }

    if (fail_fast) {
        // Surface the smallest-index real failure, exactly as
        // SweepRunner: deterministic even when several shards fault
        // concurrently; skipped shards don't count.
        for (size_t i = 0; i < n; ++i) {
            const JobRecord &record = sup.records[i];
            if (slots[i].skipped)
                continue;
            if (record.outcome == JobOutcome::TimedOut ||
                record.outcome == JobOutcome::Quarantined) {
                return Error{record.error.code,
                             "shard '" + jobs[i].label + "': " +
                                 record.error.message};
            }
        }
    }

    for (size_t i = 0; i < n; ++i) {
        switch (sup.records[i].outcome) {
          case JobOutcome::Ok:          ++sup.ok_count; break;
          case JobOutcome::Retried:     ++sup.retried_count; break;
          case JobOutcome::TimedOut:    ++sup.timed_out_count; break;
          case JobOutcome::Quarantined:
            ++sup.quarantined_count;
            sup.quarantined.push_back(jobs[i].label);
            break;
        }
    }

    const ExecCounters delta = pool_.counters() - before;
    sup.exec.threads = pool_.size();
    pool_.fillPlacement(sup.exec);
    sup.exec.tasks_run = delta.tasks_run;
    sup.exec.steals = delta.steals;
    sup.exec.wall_ms = millisSince(t_start);
    return sup;
}

} // namespace exec
} // namespace nanobus
