#include "exec/supervisor.hh"

#include <chrono>
#include <thread>

#include "util/faultinject.hh"
#include "util/random.hh"

namespace nanobus {
namespace exec {

namespace {

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start).count();
}

} // anonymous namespace

const char *
jobOutcomeName(JobOutcome outcome)
{
    switch (outcome) {
      case JobOutcome::Ok:          return "ok";
      case JobOutcome::Retried:     return "retried";
      case JobOutcome::TimedOut:    return "timed-out";
      case JobOutcome::Quarantined: return "quarantined";
    }
    return "unknown";
}

double
retryDelayMs(const SupervisorPolicy &policy, size_t job,
             unsigned retry)
{
    double bound = policy.backoff_base_ms;
    for (unsigned i = 0; i < retry; ++i)
        bound *= policy.backoff_factor;
    if (bound <= 0.0)
        return 0.0;
    // One independent stream per (job, retry): the delay depends on
    // the seed and the job's position only, never on wall-clock or on
    // what other jobs did — rerunning a sweep replays the same
    // backoffs.
    Rng rng(policy.backoff_seed ^
            (0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(job) + 1)) ^
            (0xbf58476d1ce4e5b9ull * (static_cast<uint64_t>(retry) + 1)));
    return rng.uniform(0.0, bound);
}

// ---------------------------------------------------------------- //
// JobContext

void
JobContext::start(double deadline_ms)
{
    deadline_ms_ = deadline_ms;
    start_ = Clock::now();
}

double
JobContext::elapsedMs() const
{
    return millisSince(start_);
}

bool
JobContext::shouldAbort()
{
    if (abort_.load(std::memory_order_acquire))
        return true;
    if (deadline_ms_ > 0.0 && elapsedMs() > deadline_ms_) {
        // Self-service deadline: at pool size 1 the attempt runs
        // inline on the monitor thread, so nobody else can flag the
        // overrun. The flag is one-way, exactly as a monitor abort.
        abort_.store(true, std::memory_order_release);
        return true;
    }
    return false;
}

bool
JobContext::pulse()
{
    heartbeats_.fetch_add(1, std::memory_order_relaxed);
    if (FaultInjector::active() &&
        FaultInjector::instance().fireCallFault(FaultSite::Stall)) {
        // Simulated hang: park until aborted — by the watchdog, or
        // by the self-deadline check where no monitor can run. The
        // sleep keeps the parked worker off the CPU; it publishes no
        // further heartbeats, exactly like a genuinely wedged shard.
        while (!shouldAbort())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return false;
    }
    return !shouldAbort();
}

} // namespace exec
} // namespace nanobus
