#include "exec/topology.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace nanobus {
namespace exec {

const char *
pinPolicyName(PinPolicy policy)
{
    switch (policy) {
      case PinPolicy::None:
        return "none";
      case PinPolicy::Compact:
        return "compact";
      case PinPolicy::Scatter:
        return "scatter";
    }
    return "?";
}

std::optional<PinPolicy>
parsePinPolicy(const std::string &name)
{
    if (name == "none")
        return PinPolicy::None;
    if (name == "compact")
        return PinPolicy::Compact;
    if (name == "scatter")
        return PinPolicy::Scatter;
    return std::nullopt;
}

PinPolicy
pinPolicyFromEnv()
{
    // Read once at pool construction, before any worker exists, so
    // the mt-unsafe getenv cannot race a setenv.
    const char *env =
        std::getenv("NANOBUS_PINNING"); // NOLINT(concurrency-mt-unsafe)
    if (!env || *env == '\0')
        return PinPolicy::None;
    std::optional<PinPolicy> policy = parsePinPolicy(env);
    if (!policy) {
        warn("NANOBUS_PINNING='%s' is not none/compact/scatter; "
             "pinning disabled", env);
        return PinPolicy::None;
    }
    return *policy;
}

std::vector<unsigned>
parseCpuList(const std::string &list)
{
    // Kernel format: comma-separated decimal ranges, e.g.
    // "0-3,8,10-11". An empty (or all-whitespace) list is a valid
    // encoding of "no cpus" (memory-only nodes).
    std::vector<unsigned> cpus;
    std::string token;
    std::istringstream stream(list);
    while (std::getline(stream, token, ',')) {
        // Trim whitespace (the sysfs file ends in '\n').
        size_t first = token.find_first_not_of(" \t\n\r");
        if (first == std::string::npos)
            continue;
        size_t last = token.find_last_not_of(" \t\n\r");
        token = token.substr(first, last - first + 1);

        // strtoul tolerates a leading '-' (wrapping the value), so
        // require an explicit digit up front.
        if (!std::isdigit(static_cast<unsigned char>(token[0])))
            return {};
        unsigned long lo = 0, hi = 0;
        char *end = nullptr;
        lo = std::strtoul(token.c_str(), &end, 10);
        if (end == token.c_str())
            return {};
        if (*end == '-') {
            const char *hi_start = end + 1;
            if (!std::isdigit(static_cast<unsigned char>(*hi_start)))
                return {};
            hi = std::strtoul(hi_start, &end, 10);
            if (end == hi_start || *end != '\0' || hi < lo)
                return {};
        } else if (*end == '\0') {
            hi = lo;
        } else {
            return {};
        }
        for (unsigned long cpu = lo; cpu <= hi; ++cpu)
            cpus.push_back(static_cast<unsigned>(cpu));
    }
    std::sort(cpus.begin(), cpus.end());
    cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
    return cpus;
}

Topology
Topology::singleNode(unsigned cpus)
{
    if (cpus < 1)
        cpus = 1;
    Topology topo;
    NumaNode node;
    node.id = 0;
    node.cpus.reserve(cpus);
    for (unsigned cpu = 0; cpu < cpus; ++cpu)
        node.cpus.push_back(cpu);
    topo.nodes_.push_back(std::move(node));
    return topo;
}

Topology
Topology::fromNodeCpuLists(
    const std::vector<std::vector<unsigned>> &lists)
{
    Topology topo;
    for (size_t i = 0; i < lists.size(); ++i) {
        if (lists[i].empty())
            continue; // memory-only node
        NumaNode node;
        node.id = static_cast<unsigned>(i);
        node.cpus = lists[i];
        std::sort(node.cpus.begin(), node.cpus.end());
        node.cpus.erase(
            std::unique(node.cpus.begin(), node.cpus.end()),
            node.cpus.end());
        topo.nodes_.push_back(std::move(node));
    }
    if (topo.nodes_.empty())
        return singleNode(std::thread::hardware_concurrency());
    return topo;
}

namespace {

/** Read a small sysfs file; nullopt when unreadable. */
std::optional<std::string>
readSysfsFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        return std::nullopt;
    std::ostringstream content;
    content << file.rdbuf();
    if (file.bad())
        return std::nullopt;
    return content.str();
}

} // anonymous namespace

Topology
Topology::probe()
{
#if defined(__linux__)
    const std::string root = "/sys/devices/system/node";
    std::optional<std::string> online = readSysfsFile(root + "/online");
    if (online) {
        // "online" is itself a cpulist-format node list ("0" or
        // "0-3").
        std::vector<unsigned> node_ids = parseCpuList(*online);
        std::vector<std::vector<unsigned>> lists;
        bool usable = !node_ids.empty();
        for (unsigned id : node_ids) {
            std::optional<std::string> cpulist = readSysfsFile(
                root + "/node" + std::to_string(id) + "/cpulist");
            if (!cpulist) {
                usable = false;
                break;
            }
            std::vector<unsigned> cpus = parseCpuList(*cpulist);
            if (lists.size() <= id)
                lists.resize(id + 1);
            lists[id] = std::move(cpus); // empty = memory-only node
        }
        if (usable) {
            Topology topo = fromNodeCpuLists(lists);
            if (topo.totalCpus() >= 1)
                return topo;
        }
    }
#endif
    return singleNode(std::thread::hardware_concurrency());
}

const Topology &
Topology::system()
{
    static const Topology topo = probe();
    return topo;
}

size_t
Topology::totalCpus() const
{
    size_t total = 0;
    for (const NumaNode &node : nodes_)
        total += node.cpus.size();
    return total;
}

std::optional<unsigned>
Topology::cpuForSlot(PinPolicy policy, unsigned slot,
                     unsigned pool_size) const
{
    (void)pool_size; // the map is per-slot; size kept for evolution
    if (policy == PinPolicy::None || nodes_.empty())
        return std::nullopt;

    if (policy == PinPolicy::Compact) {
        // Node-major flat walk, wrapping when the pool outgrows the
        // host.
        const size_t total = totalCpus();
        size_t flat = slot % total;
        for (const NumaNode &node : nodes_) {
            if (flat < node.cpus.size())
                return node.cpus[flat];
            flat -= node.cpus.size();
        }
        return std::nullopt; // unreachable: flat < total
    }

    // Scatter: slot s -> node (s % N), cpu (s / N) within the node,
    // wrapping per node so small nodes still accept workers.
    const NumaNode &node = nodes_[slot % nodes_.size()];
    const size_t round = slot / nodes_.size();
    return node.cpus[round % node.cpus.size()];
}

std::optional<unsigned>
Topology::nodeOfCpu(unsigned cpu) const
{
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const std::vector<unsigned> &cpus = nodes_[i].cpus;
        if (std::binary_search(cpus.begin(), cpus.end(), cpu))
            return static_cast<unsigned>(i);
    }
    return std::nullopt;
}

bool
affinityPinningSupported()
{
#if defined(__linux__)
    return true;
#else
    return false;
#endif
}

bool
pinThreadToCpu(std::thread::native_handle_type handle, unsigned cpu)
{
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    return pthread_setaffinity_np(handle, sizeof(set), &set) == 0;
#else
    (void)handle;
    (void)cpu;
    return false;
#endif
}

} // namespace exec
} // namespace nanobus
