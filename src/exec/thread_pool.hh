/**
 * @file
 * Fixed-size work-stealing thread pool — the only sanctioned way to
 * spawn concurrency in this repository (tools/lint.py enforces that
 * raw std::thread/std::async stay out of every other directory).
 *
 * Design goals, in order:
 *
 *  1. *Determinism of results.* The pool itself schedules tasks in a
 *     nondeterministic order, so every parallel construct built on it
 *     (exec/parallel.hh, exec/sweep_runner.hh) writes to disjoint,
 *     pre-allocated slots and combines them in a fixed order. The
 *     pool never reorders side effects inside one task.
 *  2. *Race-freedom that is easy to audit.* All task deques share one
 *     mutex; workers sleep on one condition variable. At the task
 *     granularity this repo uses (whole bus simulations, chunks of
 *     thousands of BEM panel interactions) the coarse lock is
 *     invisible in profiles and trivially ThreadSanitizer-clean.
 *  3. *Serial fallback.* A pool of size 1 spawns no worker threads at
 *     all: submit() runs the task inline on the caller, so
 *     NANOBUS_THREADS=1 reproduces the historical single-threaded
 *     execution exactly (same thread, same order, same bits).
 *
 * A pool of size N consists of N-1 jthread workers plus the caller,
 * which participates in draining the queues whenever it blocks on a
 * batch (ThreadPool::tryRunOneTask). Each worker owns a deque; it
 * pops its own work LIFO (cache-warm) and steals FIFO from the other
 * deques when its own runs dry. External submissions are distributed
 * round-robin.
 */

#ifndef NANOBUS_EXEC_THREAD_POOL_HH
#define NANOBUS_EXEC_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/stats.hh"
#include "exec/topology.hh"

namespace nanobus {
namespace exec {

/** Fixed-size work-stealing thread pool. */
class ThreadPool
{
  public:
    /** A unit of work. Must not block on other pool tasks except via
     *  the exec/parallel.hh helpers (which drain while waiting). */
    using Task = std::function<void()>;

    /**
     * @param threads Total concurrency including the calling thread:
     *        N-1 workers are spawned. threads == 1 spawns none and
     *        makes submit() run tasks inline (strict serial mode).
     *        Clamped to [1, kMaxThreads]. The pinning policy comes
     *        from NANOBUS_PINNING (pinPolicyFromEnv).
     */
    explicit ThreadPool(unsigned threads);

    /**
     * Same, with an explicit worker-placement policy (bench drivers'
     * --pinning flag; tests). Workers are pinned per
     * Topology::cpuForSlot; the participating caller (slot 0) is
     * never pinned. On single-node hosts, on platforms without
     * affinity support, and under PinPolicy::None the policy
     * degrades to a no-op: no affinity call is made and
     * workersPerNode() stays empty. Pinning changes where workers
     * run, never what they compute — the determinism contract is
     * untouched.
     */
    ThreadPool(unsigned threads, PinPolicy pinning);

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * The process-global pool, constructed lazily on first use and
     * sized by defaultThreads(). Intended for the library hot paths
     * (BEM assembly, twin-bus runs); explicit instances are for
     * callers that need to control sizing (tests, SweepRunner users).
     */
    static ThreadPool &global();

    /**
     * Pool size the global pool will use: the NANOBUS_THREADS
     * environment variable when set (clamped to [1, kMaxThreads]),
     * otherwise std::thread::hardware_concurrency().
     */
    static unsigned defaultThreads();

    /**
     * True when the calling thread is a worker of *any* ThreadPool
     * (or is inline-executing a task of one). Library code uses this
     * to degrade nested parallel regions to serial-by-policy instead
     * of queueing into a pool it may later block on; see
     * docs/PARALLELISM.md.
     */
    static bool onPoolThread();

    /** Total concurrency (workers + the participating caller). */
    unsigned size() const { return size_; }

    /** Placement policy this pool was asked to apply. */
    PinPolicy pinning() const { return pinning_; }

    /**
     * Pinned workers per topology node (index = node index in
     * Topology::nodes()). Empty when the policy is None, the host is
     * single-node, affinity is unsupported, or every pin attempt
     * failed — the per-node counters the bench drivers serialize
     * into BENCH_*.json.
     */
    const std::vector<unsigned> &workersPerNode() const
    {
        return workers_per_node_;
    }

    /** Copy this pool's placement outcome into `stats`. */
    void fillPlacement(ExecStats &stats) const
    {
        stats.pinning = pinPolicyName(pinning_);
        stats.workers_per_node = workers_per_node_;
    }

    /**
     * Enqueue one task. With size() == 1 the task runs inline before
     * submit() returns; otherwise it is pushed to a worker deque
     * round-robin and may run on any worker or on a caller draining
     * the pool via tryRunOneTask().
     */
    void submit(Task task);

    /**
     * Enqueue one task with a placement hint: the task is pushed to
     * deque (hint % workers) instead of round-robin, so a caller
     * that hints with a stable chunk index lands the same chunk on
     * the same worker — and, with pinning, the same NUMA node —
     * batch after batch. Purely a *placement* hint: work stealing
     * may still move the task, and results are bit-identical either
     * way (docs/PARALLELISM.md). Inline (like submit) at size 1.
     */
    void submitHinted(Task task, size_t hint);

    /**
     * Pop and run one queued task on the calling thread. Returns
     * false when every deque is empty (tasks may still be *running*
     * on workers). Callers waiting for a batch loop on this so the
     * waiting thread contributes instead of idling.
     */
    bool tryRunOneTask();

    /** Snapshot of the lifetime counters (relaxed reads). */
    ExecCounters counters() const;

    /** Hard ceiling on pool size (sanity clamp for env overrides). */
    static constexpr unsigned kMaxThreads = 256;

  private:
    void workerLoop(std::stop_token stop, unsigned index);

    /**
     * Pop one task with `home` as the preferred deque (its back —
     * LIFO), scanning the other deques front-first (FIFO steal)
     * otherwise. Caller participation passes home == npos so every
     * successful pop counts as a steal. Returns false when all
     * deques are empty. Must be called with mutex_ held; releases it
     * only in the caller.
     */
    bool popTaskLocked(size_t home, Task &out);

    /** Run `task` inline on the caller (strict serial mode). */
    void runInline(Task &task);

    unsigned size_;
    PinPolicy pinning_ = PinPolicy::None;
    /** Pin outcome per node index; empty when nothing was pinned. */
    std::vector<unsigned> workers_per_node_;
    // One deque per worker; all guarded by mutex_. pending_ counts
    // queued (not yet popped) tasks so sleepers have a cheap
    // predicate.
    mutable std::mutex mutex_;
    std::condition_variable_any cv_;
    std::vector<std::deque<Task>> deques_;
    size_t pending_ = 0;
    size_t next_deque_ = 0;

    std::atomic<uint64_t> tasks_run_{0};
    std::atomic<uint64_t> steals_{0};

    // Last member: workers start in the constructor's init list tail
    // and must observe the fully-constructed queues.
    std::vector<std::jthread> workers_;
};

} // namespace exec
} // namespace nanobus

#endif // NANOBUS_EXEC_THREAD_POOL_HH
