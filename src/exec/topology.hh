/**
 * @file
 * NUMA topology probe and deterministic worker-placement policy for
 * the exec runtime.
 *
 * On multi-socket hosts the sharded sweeps and the batched pipeline
 * hit a throughput cliff when BEM row blocks and trace batches
 * migrate across memory nodes. This header provides the three
 * ingredients that keep data local without touching the determinism
 * contract:
 *
 *  - *A portable probe.* Topology::system() parses
 *    /sys/devices/system/node on Linux (nodes, cpus per node) and
 *    degrades to a single synthetic node everywhere else — or when
 *    the sysfs tree is absent, unreadable, or degenerate. Memory-only
 *    nodes (no cpus) are skipped, so every reported node has a
 *    non-empty cpu set.
 *  - *A placement policy.* PinPolicy selects how pool workers map to
 *    cpus: None (no pinning — the default, and the only behaviour
 *    before this layer existed), Compact (fill node 0's cpus before
 *    spilling to node 1 — minimizes cross-node traffic for pools
 *    smaller than a socket), Scatter (round-robin across nodes —
 *    maximizes aggregate memory bandwidth). The policy is selected
 *    with the NANOBUS_PINNING environment variable.
 *  - *A portability shim.* pinThreadToCpu() wraps
 *    pthread_setaffinity_np behind a feature test; on platforms
 *    without it every policy degrades to None without error.
 *
 * Determinism: pinning changes *where* a task runs, never *what* it
 * computes or in which order results combine. Chunk boundaries and
 * ordered combination stay a pure function of (n, grain)
 * (exec/parallel.hh); the worker→cpu map itself is a pure function
 * of (topology, policy, slot, pool size), so placement is
 * reproducible run over run on the same host.
 */

#ifndef NANOBUS_EXEC_TOPOLOGY_HH
#define NANOBUS_EXEC_TOPOLOGY_HH

#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace nanobus {
namespace exec {

/** Worker-placement policy for ThreadPool. */
enum class PinPolicy {
    /** No affinity calls at all (historical behaviour). */
    None,
    /** Fill node 0's cpus first, then node 1's, ... */
    Compact,
    /** Round-robin workers across nodes. */
    Scatter,
};

/** Policy name: "none", "compact", or "scatter". */
const char *pinPolicyName(PinPolicy policy);

/** Parse a policy name; nullopt when unrecognized. */
std::optional<PinPolicy> parsePinPolicy(const std::string &name);

/**
 * Policy selected by the NANOBUS_PINNING environment variable
 * ("none" / "compact" / "scatter"); None when unset. An unrecognized
 * value warns once and selects None — mirroring how NANOBUS_THREADS
 * treats garbage.
 */
PinPolicy pinPolicyFromEnv();

/** One NUMA node with at least one cpu. */
struct NumaNode
{
    /** Kernel node id (not necessarily dense). */
    unsigned id = 0;
    /** Online cpus of this node, ascending. Never empty. */
    std::vector<unsigned> cpus;
};

/**
 * The host's cpu/node layout. Immutable once built; nodes are sorted
 * by id and every node has a non-empty cpu set (memory-only nodes
 * are dropped by the probe).
 */
class Topology
{
  public:
    /** Synthetic single-node topology with cpus 0..cpus-1 (at least
     *  one). The non-Linux and probe-failure fallback. */
    static Topology singleNode(unsigned cpus);

    /** Build from explicit per-node cpu lists (tests, simulations of
     *  multi-socket hosts). Empty lists are dropped; an all-empty
     *  input degrades to singleNode(hardware_concurrency). */
    static Topology
    fromNodeCpuLists(const std::vector<std::vector<unsigned>> &lists);

    /** Probe the host: /sys/devices/system/node on Linux, a single
     *  synthetic node elsewhere or on any parse failure. */
    static Topology probe();

    /** Cached probe() of this host (probed once, thread-safe). */
    static const Topology &system();

    const std::vector<NumaNode> &nodes() const { return nodes_; }
    size_t nodeCount() const { return nodes_.size(); }
    bool multiNode() const { return nodes_.size() > 1; }

    /** Total cpus across all nodes (>= 1). */
    size_t totalCpus() const;

    /**
     * The cpu that pool slot `slot` of a pool of `pool_size` total
     * threads should pin to under `policy`, or nullopt for None.
     * Slot 0 is the participating caller and is never pinned (the
     * application owns that thread's affinity), so ThreadPool passes
     * slot = worker index + 1. Pure function of its arguments:
     *
     *  - Compact walks the node-major cpu list (node 0's cpus, then
     *    node 1's, ...), wrapping when the pool outgrows the host.
     *  - Scatter assigns slot s to node (s % nodeCount) and takes
     *    that node's (s / nodeCount)-th cpu, wrapping per node.
     */
    std::optional<unsigned> cpuForSlot(PinPolicy policy, unsigned slot,
                                       unsigned pool_size) const;

    /** Index into nodes() of the node owning `cpu`; nullopt when
     *  the cpu is not in the map. An index, not a kernel id: node
     *  ids need not be dense, indices are. */
    std::optional<unsigned> nodeOfCpu(unsigned cpu) const;

  private:
    std::vector<NumaNode> nodes_;
};

/**
 * Parse a kernel cpulist string ("0-3,8,10-11") into an ascending
 * cpu vector. Whitespace and a trailing newline are tolerated;
 * malformed input yields an empty vector (never a partial parse).
 */
std::vector<unsigned> parseCpuList(const std::string &list);

/** True when this build can pin threads at all (Linux + pthreads). */
bool affinityPinningSupported();

/**
 * Pin `handle` to exactly `cpu`. Returns false when unsupported on
 * this platform or when the kernel refuses (offline cpu, cgroup
 * cpuset restriction, unprivileged sandbox) — callers degrade to
 * unpinned execution, they do not fail.
 *
 * This wrapper is the single sanctioned affinity call site:
 * tools/lint.py (raw-affinity) keeps pthread_setaffinity_np and
 * sched_setaffinity out of every directory but src/exec/.
 */
bool pinThreadToCpu(std::thread::native_handle_type handle,
                    unsigned cpu);

} // namespace exec
} // namespace nanobus

#endif // NANOBUS_EXEC_TOPOLOGY_HH
