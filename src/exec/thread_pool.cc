#include "exec/thread_pool.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace nanobus {
namespace exec {

namespace {

/**
 * Depth of pool-task execution on this thread: > 0 while a worker
 * (or an inline submit, or a caller draining via tryRunOneTask) is
 * running a task. Nested parallel regions consult this to degrade to
 * serial instead of re-entering a pool they may block on.
 */
thread_local unsigned t_task_depth = 0;

/** RAII marker for one task execution. */
struct TaskScope
{
    TaskScope() { ++t_task_depth; }
    ~TaskScope() { --t_task_depth; }
};

constexpr size_t kNoHomeDeque = static_cast<size_t>(-1);

} // anonymous namespace

ThreadPool::ThreadPool(unsigned threads)
    : ThreadPool(threads, pinPolicyFromEnv())
{
}

ThreadPool::ThreadPool(unsigned threads, PinPolicy pinning)
    : pinning_(pinning)
{
    if (threads < 1)
        threads = 1;
    if (threads > kMaxThreads)
        threads = kMaxThreads;
    size_ = threads;

    // One deque per worker. The caller has no deque of its own; its
    // pops are always steals by definition.
    const unsigned workers = threads - 1;
    deques_.resize(workers);
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
        workers_.emplace_back([this, i](std::stop_token stop) {
            workerLoop(stop, i);
        });
    }

    // Pin the spawned workers per policy. Single-node hosts and
    // platforms without affinity support degrade to a no-op: the
    // policy is recorded but no affinity call is made. Pinning from
    // the constructor (not from inside the workers) keeps the
    // per-node counters valid the moment the constructor returns.
    const Topology &topo = Topology::system();
    if (pinning_ != PinPolicy::None && topo.multiNode() &&
        affinityPinningSupported()) {
        std::vector<unsigned> per_node(topo.nodeCount(), 0);
        bool any = false;
        for (unsigned i = 0; i < workers; ++i) {
            // Slot 0 is the participating caller (never pinned).
            std::optional<unsigned> cpu =
                topo.cpuForSlot(pinning_, i + 1, size_);
            if (!cpu)
                continue;
            if (!pinThreadToCpu(workers_[i].native_handle(), *cpu))
                continue; // kernel refused (cpuset, sandbox): skip
            if (std::optional<unsigned> node = topo.nodeOfCpu(*cpu)) {
                ++per_node[*node];
                any = true;
            }
        }
        if (any)
            workers_per_node_ = std::move(per_node);
    }
}

ThreadPool::~ThreadPool()
{
    // Drain-then-join: tasks already queued still run (a batch in
    // flight when the pool dies would otherwise deadlock its waiting
    // caller). jthread's destructor requests stop and joins; workers
    // exit once stopped *and* out of work.
    for (std::jthread &w : workers_)
        w.request_stop();
    cv_.notify_all();
    workers_.clear(); // joins
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(defaultThreads());
    return pool;
}

unsigned
ThreadPool::defaultThreads()
{
    // Read once at pool construction, before any worker exists, so
    // the mt-unsafe getenv cannot race a setenv.
    if (const char *env = std::getenv(
            "NANOBUS_THREADS")) { // NOLINT(concurrency-mt-unsafe)
        char *end = nullptr;
        long value = std::strtol(env, &end, 10);
        if (end == env || *end != '\0' || value < 1) {
            warn("NANOBUS_THREADS='%s' is not a positive integer; "
                 "ignoring", env);
        } else {
            if (value > static_cast<long>(kMaxThreads))
                value = static_cast<long>(kMaxThreads);
            return static_cast<unsigned>(value);
        }
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

bool
ThreadPool::onPoolThread()
{
    return t_task_depth > 0;
}

void
ThreadPool::runInline(Task &task)
{
    // Strict serial mode: run inline, preserving the historical
    // single-threaded execution order exactly.
    TaskScope scope;
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    task();
}

void
ThreadPool::submit(Task task)
{
    if (deques_.empty()) {
        runInline(task);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        deques_[next_deque_].push_back(std::move(task));
        next_deque_ = (next_deque_ + 1) % deques_.size();
        ++pending_;
    }
    cv_.notify_one();
}

void
ThreadPool::submitHinted(Task task, size_t hint)
{
    if (deques_.empty()) {
        runInline(task);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Stable hint -> deque map (no round-robin state), so the
        // same chunk index lands on the same worker batch after
        // batch. Placement only: stealing may still move it.
        deques_[hint % deques_.size()].push_back(std::move(task));
        ++pending_;
    }
    cv_.notify_one();
}

bool
ThreadPool::popTaskLocked(size_t home, Task &out)
{
    if (pending_ == 0)
        return false;
    if (home != kNoHomeDeque && !deques_[home].empty()) {
        out = std::move(deques_[home].back());
        deques_[home].pop_back();
        --pending_;
        return true;
    }
    for (size_t i = 0; i < deques_.size(); ++i) {
        if (i == home || deques_[i].empty())
            continue;
        out = std::move(deques_[i].front());
        deques_[i].pop_front();
        --pending_;
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

bool
ThreadPool::tryRunOneTask()
{
    Task task;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!popTaskLocked(kNoHomeDeque, task))
            return false;
    }
    TaskScope scope;
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    task();
    return true;
}

void
ThreadPool::workerLoop(std::stop_token stop, unsigned index)
{
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, stop, [this] { return pending_ > 0; });
            if (!popTaskLocked(index, task)) {
                // Queues empty: exit when stopping, else spurious
                // wake — loop back into the wait.
                if (stop.stop_requested())
                    return;
                continue;
            }
        }
        TaskScope scope;
        tasks_run_.fetch_add(1, std::memory_order_relaxed);
        task();
    }
}

ExecCounters
ThreadPool::counters() const
{
    return {tasks_run_.load(std::memory_order_relaxed),
            steals_.load(std::memory_order_relaxed)};
}

} // namespace exec
} // namespace nanobus
