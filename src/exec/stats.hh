/**
 * @file
 * Lightweight execution counters for the parallel runtime.
 *
 * The counters exist so speedups are *measurable*, not asserted:
 * every SweepRunner batch and every bench shard reports how many
 * tasks ran, how many were stolen across worker deques, and how much
 * wall-clock each shard took, and the bench drivers serialize them
 * into BENCH_*.json so the scaling trajectory is captured run over
 * run.
 *
 * This header is dependency-free on purpose: sim/experiment.hh embeds
 * ExecStats in SweepReport without pulling the pool in.
 */

#ifndef NANOBUS_EXEC_STATS_HH
#define NANOBUS_EXEC_STATS_HH

#include <cstdint>
#include <vector>

namespace nanobus {
namespace exec {

/** Monotone lifetime counters of one ThreadPool. */
struct ExecCounters
{
    /** Tasks executed (on workers, callers, or inline). */
    uint64_t tasks_run = 0;
    /** Tasks popped from a deque the runner did not own. */
    uint64_t steals = 0;

    ExecCounters operator-(const ExecCounters &rhs) const
    {
        return {tasks_run - rhs.tasks_run, steals - rhs.steals};
    }
};

/**
 * Execution summary of one parallel batch or shard, embedded in
 * SweepReport and in the bench JSON output.
 */
struct ExecStats
{
    /** Pool concurrency the work ran under (1 = strict serial). */
    unsigned threads = 1;
    /** Tasks the batch executed. */
    uint64_t tasks_run = 0;
    /** Cross-deque steals observed during the batch. */
    uint64_t steals = 0;
    /** Wall-clock of the batch or shard [ms]. */
    double wall_ms = 0.0;
    /** Worker-placement policy the pool ran under ("none" /
     *  "compact" / "scatter"); a static string from
     *  exec::pinPolicyName, stored raw so this header stays
     *  dependency-free. */
    const char *pinning = "none";
    /** Pinned workers per topology node (index = node index in
     *  Topology::nodes()). Empty when the policy is None, pinning is
     *  unsupported, or every pin attempt failed. */
    std::vector<unsigned> workers_per_node;
};

} // namespace exec
} // namespace nanobus

#endif // NANOBUS_EXEC_STATS_HH
