/**
 * @file
 * BasicSweepRunner — deterministic sharding of independent job
 * batches over a ThreadPool.
 *
 * The paper's evaluation is a cross-product — technology nodes ×
 * encoding schemes × traces × configurations — and every cell is an
 * independent job: it owns its simulators, shares nothing mutable,
 * and produces one report. BasicSweepRunner turns a vector of such
 * jobs into a batch on a ThreadPool with three guarantees:
 *
 *  - *Ordered collection.* reports[i] is job i's report, whatever
 *    order the shards actually ran in; batch output is a pure
 *    function of the job list.
 *  - *Cancellation on first fault.* A job that returns an Error (or
 *    whose report the Options::fault_probe rejects) flips the
 *    batch's cancel flag: shards that have not started are skipped,
 *    shards in flight complete, and the batch surfaces the failed
 *    job with the *smallest index* — deterministic even when several
 *    shards fault concurrently.
 *  - *Measurability.* Each report carries its shard wall-clock and
 *    the pool size; the batch totals tasks run and steals so bench
 *    drivers can serialize the scaling trajectory.
 *
 * The runner is generic over the `Report` payload so this header
 * depends only on the execution layer (docs/STATIC_ANALYSIS.md,
 * layering DAG): `Report` must be default-constructible, movable,
 * and expose an `exec` member of type ExecStats the runner stamps
 * with pool placement and wall-clock. The simulation instantiation
 * (`Report` = SweepReport) plus its convenience job builders live in
 * src/sim/sweep.hh, *above* both exec and sim.
 *
 * Jobs must not touch process-global mutable state; the library's
 * own globals (FaultInjector, the logging sinks) are thread-safe.
 */

#ifndef NANOBUS_EXEC_SWEEP_RUNNER_HH
#define NANOBUS_EXEC_SWEEP_RUNNER_HH

#include <atomic>
#include <chrono>
#include <functional>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exec/parallel.hh"
#include "exec/stats.hh"
#include "exec/thread_pool.hh"
#include "util/result.hh"

namespace nanobus {
namespace exec {

namespace detail {

/** Steady-clock milliseconds helper for the shard timing *reports*.
 *  Wall-clock feeds only the published wall_ms fields, never a
 *  scheduling or collection decision (nbcheck rule det-wallclock;
 *  this header is an allowlisted timing-report site). */
using SweepClock = std::chrono::steady_clock;

inline double
millisSince(SweepClock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               SweepClock::now() - start)
        .count();
}

} // namespace detail

/** One independent shard of a sweep, producing a `Report`. */
template <class Report>
struct BasicSweepJob
{
    /** Shard label for logs, JSON output, and error messages. */
    std::string label;
    /**
     * The shard body. Runs at most once, on an arbitrary pool
     * thread; must construct every simulator it needs (per-job
     * isolation) and report recoverable trouble via the Result
     * rather than fatal().
     */
    std::function<Result<Report>()> body;
};

/** Outcome of a completed (un-cancelled) batch. */
template <class Report>
struct BasicBatchReport
{
    /** reports[i] belongs to jobs[i]; always full-size. */
    std::vector<Report> reports;
    /** Batch-wide execution counters (pool deltas + wall time). */
    ExecStats exec;
};

/**
 * Classifies a contained anomaly inside an otherwise-successful
 * report as a shard failure. Returning an engaged optional fails the
 * shard with that Error; disengaged accepts the report. The probe
 * must be a pure function of the report.
 */
template <class Report>
using ReportFaultProbe =
    std::function<std::optional<Error>(const Report &)>;

/** Runs vectors of BasicSweepJobs on a ThreadPool. */
template <class Report>
class BasicSweepRunner
{
  public:
    using Job = BasicSweepJob<Report>;
    using Batch = BasicBatchReport<Report>;

    struct Options
    {
        /**
         * Optional report rejection hook (e.g. the thermal-fault
         * probe sim/sweep.hh installs). Null accepts every report:
         * the robust sweep's contract is that contained anomalies
         * degrade fidelity, not batch completion.
         */
        ReportFaultProbe<Report> fault_probe;
    };

    explicit BasicSweepRunner(ThreadPool &pool)
        : BasicSweepRunner(pool, Options{})
    {
    }

    BasicSweepRunner(ThreadPool &pool, Options options)
        : pool_(pool), options_(std::move(options))
    {
    }

    /**
     * Run every job; blocks until the batch drains (the calling
     * thread participates). On success returns the full ordered
     * batch report. On failure returns the smallest-index failed
     * job's Error, its message prefixed with the job label; jobs not
     * yet started at cancellation time never run.
     */
    Result<Batch> run(const std::vector<Job> &jobs) const
    {
        const auto t_start = detail::SweepClock::now();
        const ExecCounters before = pool_.counters();

        Batch batch;
        batch.reports.resize(jobs.size());

        // Shared shard state. `first_failed` carries the smallest
        // index of a failed job so the surfaced error is
        // deterministic no matter which shard faulted first in
        // wall-clock terms.
        std::atomic<bool> cancel{false};
        std::mutex error_mutex;
        size_t first_failed = std::numeric_limits<size_t>::max();
        Error first_error;

        auto runShard = [&](size_t i) {
            if (cancel.load(std::memory_order_relaxed))
                return;
            const auto shard_start = detail::SweepClock::now();
            Result<Report> result = jobs[i].body();

            // Collect or escalate, under per-shard isolation: only
            // the error bookkeeping is shared, and it is
            // mutex-guarded.
            bool failed = !result.ok();
            Error error;
            if (failed) {
                error = result.error();
            } else {
                Report report = result.takeValue();
                std::optional<Error> rejected =
                    options_.fault_probe ? options_.fault_probe(report)
                                         : std::nullopt;
                if (rejected) {
                    failed = true;
                    error = std::move(*rejected);
                } else {
                    report.exec.threads = pool_.size();
                    pool_.fillPlacement(report.exec);
                    report.exec.wall_ms =
                        detail::millisSince(shard_start);
                    batch.reports[i] = std::move(report);
                }
            }
            if (failed) {
                cancel.store(true, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(error_mutex);
                if (i < first_failed) {
                    first_failed = i;
                    first_error =
                        Error{error.code, "shard '" + jobs[i].label +
                                              "': " + error.message};
                }
            }
        };

        // Grain 1: one shard per task, so the pool load-balances
        // whole simulations. Shard order of *execution* is
        // nondeterministic; everything observable is collected by
        // index.
        parallelFor(pool_, jobs.size(),
                    [&](size_t begin, size_t end) {
                        for (size_t i = begin; i < end; ++i)
                            runShard(i);
                    },
                    1);

        if (first_failed != std::numeric_limits<size_t>::max())
            return first_error;

        const ExecCounters delta = pool_.counters() - before;
        batch.exec.threads = pool_.size();
        pool_.fillPlacement(batch.exec);
        batch.exec.tasks_run = delta.tasks_run;
        batch.exec.steals = delta.steals;
        batch.exec.wall_ms = detail::millisSince(t_start);
        return batch;
    }

  private:
    ThreadPool &pool_;
    Options options_;
};

} // namespace exec
} // namespace nanobus

#endif // NANOBUS_EXEC_SWEEP_RUNNER_HH
