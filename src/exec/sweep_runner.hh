/**
 * @file
 * SweepRunner — deterministic sharding of experiment cross-products.
 *
 * The paper's evaluation is a cross-product — technology nodes ×
 * encoding schemes × traces × configurations — and every cell is an
 * independent simulation: it owns its TwinBusSimulator (and through
 * it a ThermalNetwork), shares nothing mutable, and produces one
 * SweepReport. SweepRunner turns a vector of such jobs into a batch
 * on a ThreadPool with three guarantees:
 *
 *  - *Ordered collection.* reports[i] is job i's report, whatever
 *    order the shards actually ran in; batch output is a pure
 *    function of the job list.
 *  - *Cancellation on first fault.* A job that returns an Error (or,
 *    with Options::fault_on_thermal, contains a ThermalFault) flips
 *    the batch's cancel flag: shards that have not started are
 *    skipped, shards in flight complete, and the batch surfaces the
 *    failed job with the *smallest index* — deterministic even when
 *    several shards fault concurrently.
 *  - *Measurability.* Each report carries its shard wall-clock and
 *    the pool size; the batch totals tasks run and steals so bench
 *    drivers can serialize the scaling trajectory.
 *
 * Jobs must not touch process-global mutable state; the library's
 * own globals (FaultInjector, the logging sinks) are thread-safe.
 */

#ifndef NANOBUS_EXEC_SWEEP_RUNNER_HH
#define NANOBUS_EXEC_SWEEP_RUNNER_HH

#include <functional>
#include <string>
#include <vector>

#include "exec/stats.hh"
#include "exec/thread_pool.hh"
#include "sim/experiment.hh"
#include "util/result.hh"

namespace nanobus {
namespace exec {

/** One independent shard of a sweep. */
struct SweepJob
{
    /** Shard label for logs, JSON output, and error messages. */
    std::string label;
    /**
     * The shard body. Runs at most once, on an arbitrary pool
     * thread; must construct every simulator it needs (per-job
     * isolation) and report recoverable trouble via the Result
     * rather than fatal().
     */
    std::function<Result<SweepReport>()> body;
};

/** Outcome of a completed (un-cancelled) batch. */
struct BatchReport
{
    /** reports[i] belongs to jobs[i]; always full-size. */
    std::vector<SweepReport> reports;
    /** Batch-wide execution counters (pool deltas + wall time). */
    ExecStats exec;
};

/** Runs vectors of SweepJobs on a ThreadPool. */
class SweepRunner
{
  public:
    struct Options
    {
        /**
         * Treat a contained ThermalFault inside a shard's report as
         * a shard failure (ErrorCode::ThermalRunaway). Off by
         * default: the robust sweep's contract is that contained
         * anomalies degrade fidelity, not batch completion.
         */
        bool fault_on_thermal = false;
    };

    explicit SweepRunner(ThreadPool &pool);
    SweepRunner(ThreadPool &pool, Options options);

    /**
     * Run every job; blocks until the batch drains (the calling
     * thread participates). On success returns the full ordered
     * BatchReport. On failure returns the smallest-index failed
     * job's Error, its message prefixed with the job label; jobs not
     * yet started at cancellation time never run.
     */
    Result<BatchReport> run(const std::vector<SweepJob> &jobs) const;

    /**
     * Convenience shard builder: one runRobustTraceSweep cell. The
     * body runs the robust sweep inside the shard (the sweep's own
     * nested parallelism degrades to serial by policy); whether a
     * contained ThermalFault fails the shard is the *runner's*
     * Options::fault_on_thermal decision, applied uniformly when the
     * batch is collected.
     */
    static SweepJob traceSweepJob(std::string label,
                                  std::string trace_path,
                                  const TechnologyNode &tech,
                                  BusSimConfig config,
                                  size_t trace_error_budget = 1000);

  private:
    ThreadPool &pool_;
    Options options_;
};

} // namespace exec
} // namespace nanobus

#endif // NANOBUS_EXEC_SWEEP_RUNNER_HH
