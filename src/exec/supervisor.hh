/**
 * @file
 * BasicSupervisor — fault-tolerant execution of sweep shards on top
 * of the BasicSweepRunner job model (docs/ROBUSTNESS.md,
 * "Supervision & retry").
 *
 * The sweep runner's contract is fail-fast: the first shard Error
 * cancels the batch. That is right for interactive runs but wrong
 * for fleet-scale sweeps, where one flaky filesystem read or one
 * hung worker must not discard hours of finished shards. The
 * supervisor adds the policy layer:
 *
 *  - *Fault taxonomy.* A shard Error is classified by its ErrorCode:
 *    IoError is transient (a retry against the reopened source can
 *    succeed); everything else — contract violations, parse errors,
 *    thermal runaway — is permanent and quarantines the job.
 *  - *Bounded retry with deterministic backoff.* Transient failures
 *    are retried up to Options::max_retries times. The backoff delay
 *    for (job, attempt) is a pure function of the seeded Rng stream —
 *    no wall-clock feeds the decision path, so which jobs retry, how
 *    often, and with what delays is reproducible run over run.
 *  - *Deadlines and the heartbeat watchdog.* Job bodies receive a
 *    JobContext and call pulse() at natural progress points. The
 *    monitor (the calling thread, which also drains the pool) aborts
 *    any attempt that outlives Options::deadline_ms; the attempt
 *    observes the abort at its next pulse() and returns. A pulse()
 *    also self-checks the deadline, so a stalled job times out even
 *    at pool size 1 where no monitor can run concurrently. Deadline
 *    overruns are permanent (outcome TimedOut): a stalled shard is
 *    not I/O flakiness.
 *  - *Run-to-completion.* By default every job is driven to a final
 *    outcome (Ok / Retried / TimedOut / Quarantined) and the batch
 *    returns a degraded-mode report with per-job records;
 *    Options::run_to_completion = false restores the runner's
 *    fail-fast contract (smallest-index permanent failure, label-
 *    prefixed, surfaces as the batch Error).
 *
 * Like BasicSweepRunner, the supervisor is generic over the `Report`
 * payload so this header depends only on the execution layer
 * (docs/STATIC_ANALYSIS.md, layering DAG): `Report` must be
 * default-constructible, movable, and expose an ExecStats `exec`
 * member. The simulation instantiation and its job builders live in
 * src/sim/sweep.hh.
 *
 * Determinism: reports are collected by job index, and a job's
 * result is produced by its (isolated) body exactly as under the
 * plain runner — for jobs that succeed, the reports are
 * bit-identical at every pool size. Timing decides only *scheduling*
 * (and, with deadlines armed, whether a genuinely slow shard times
 * out); tests drive the timeout path deterministically with the
 * injected FaultSite::Stall hang.
 */

#ifndef NANOBUS_EXEC_SUPERVISOR_HH
#define NANOBUS_EXEC_SUPERVISOR_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exec/sweep_runner.hh"
#include "exec/thread_pool.hh"
#include "util/result.hh"

namespace nanobus {
namespace exec {

/** Final state of one supervised job. */
enum class JobOutcome {
    /** Succeeded on the first attempt. */
    Ok,
    /** Succeeded after one or more transient-fault retries. */
    Retried,
    /** An attempt outlived its deadline and was aborted. */
    TimedOut,
    /** Failed permanently (or exhausted its retry budget). */
    Quarantined,
};

/** Readable name of a job outcome. */
const char *jobOutcomeName(JobOutcome outcome);

/** Knobs of the supervision policy that do not depend on the report
 *  payload. BasicSupervisor<Report>::Options extends this with the
 *  typed fault probe. */
struct SupervisorPolicy
{
    /** Retry attempts after the first, per job, for transient
     *  faults. */
    unsigned max_retries = 2;
    /** First retry's backoff upper bound [ms]; the delay is drawn
     *  uniformly from [0, base * factor^retry). 0 retries
     *  immediately. */
    double backoff_base_ms = 1.0;
    /** Exponential growth factor per retry. */
    double backoff_factor = 2.0;
    /** Seed of the backoff stream; same seed, same delays. */
    uint64_t backoff_seed = 0x6e62757353757056ull;
    /** Per-attempt deadline [ms]; 0 disables the watchdog. */
    double deadline_ms = 0.0;
    /** Monitor sleep when the pool has nothing to drain [ms]. */
    double watchdog_poll_ms = 1.0;
    /** Drive every job to a final outcome (degraded-mode report);
     *  false = fail-fast like the plain sweep runner. */
    bool run_to_completion = true;
};

/**
 * Backoff delay [ms] before retry `retry` (0-based) of job `job`:
 * uniform in [0, base * factor^retry), drawn from an Rng seeded by
 * (seed, job, retry) only. A pure function — no wall-clock, no
 * cross-job state.
 */
double retryDelayMs(const SupervisorPolicy &policy, size_t job,
                    unsigned retry);

/** True when `code` is worth retrying (transient fault). */
inline bool
transientError(ErrorCode code)
{
    return code == ErrorCode::IoError;
}

/**
 * Per-attempt liveness channel between a supervised job body and the
 * watchdog. Bodies call pulse() at natural progress points (per
 * sweep, per batch); the supervisor reads the published heartbeat
 * counter and flags the abort when the attempt outlives its
 * deadline. All members are atomics: pulse() runs on the worker,
 * the monitor on the calling thread.
 */
class JobContext
{
  public:
    JobContext() = default;
    JobContext(const JobContext &) = delete;
    JobContext &operator=(const JobContext &) = delete;

    /**
     * Publish one heartbeat and poll for cancellation. Returns false
     * once the supervisor has aborted this attempt (deadline
     * exceeded) — the body should return promptly with any Error;
     * the attempt's result is discarded either way.
     *
     * Also services FaultSite::Stall: a firing injection parks the
     * call in a sleep loop until the attempt is aborted, which is
     * how tests simulate a hung worker without timing flakes.
     */
    [[nodiscard]] bool pulse();

    /** Heartbeats published so far (monitor-side observability). */
    uint64_t heartbeats() const
    {
        return heartbeats_.load(std::memory_order_relaxed);
    }

    /** True once the attempt has been told to stop. */
    bool aborted() const
    {
        return abort_.load(std::memory_order_acquire);
    }

  private:
    template <class Report>
    friend class BasicSupervisor;

    /** Arm the deadline clock; called once before the attempt runs. */
    void start(double deadline_ms);

    /** Tell the attempt to stop (idempotent). */
    void abort() { abort_.store(true, std::memory_order_release); }

    /** Milliseconds since start(). */
    double elapsedMs() const;

    /** aborted(), plus the self-deadline check that lets a stalled
     *  attempt escape with no monitor running (pool size 1). */
    bool shouldAbort();

    std::atomic<uint64_t> heartbeats_{0};
    std::atomic<bool> abort_{false};
    std::chrono::steady_clock::time_point start_{};
    double deadline_ms_ = 0.0;
};

/** One supervised shard: a sweep job whose body sees its
 *  JobContext. */
template <class Report>
struct BasicSupervisedJob
{
    /** Shard label for logs, JSON output, and error messages. */
    std::string label;
    /**
     * The shard body. May run several times (one per attempt), each
     * time with a fresh JobContext; every attempt must construct its
     * own simulators and sources from scratch, which is what makes
     * retry sound.
     */
    std::function<Result<Report>(JobContext &)> body;
};

/** Outcome record of one supervised job. */
struct JobRecord
{
    /** Final state. */
    JobOutcome outcome = JobOutcome::Ok;
    /** Attempts consumed (>= 1 for every job that ran). */
    unsigned attempts = 0;
    /** Heartbeats the final attempt published. */
    uint64_t heartbeats = 0;
    /** Backoff delays applied before each retry [ms]. */
    std::vector<double> backoff_ms;
    /** Final error (TimedOut and Quarantined outcomes). */
    Error error;
};

/** Degraded-mode outcome of a run-to-completion batch. */
template <class Report>
struct BasicSupervisedReport
{
    /** reports[i] belongs to jobs[i]; meaningful only when
     *  records[i] ended Ok or Retried (default-constructed
     *  otherwise). */
    std::vector<Report> reports;
    /** records[i] is job i's outcome record; always full-size. */
    std::vector<JobRecord> records;
    /** Labels of quarantined jobs, in job order. */
    std::vector<std::string> quarantined;
    /** Outcome tallies (sum equals the job count). */
    size_t ok_count = 0;
    size_t retried_count = 0;
    size_t timed_out_count = 0;
    size_t quarantined_count = 0;
    /** Batch-wide execution counters (pool deltas + wall time). */
    ExecStats exec;

    /** True when every job ended Ok or Retried. */
    bool allSucceeded() const
    {
        return timed_out_count == 0 && quarantined_count == 0;
    }
};

/** Supervised execution of job batches on a ThreadPool. */
template <class Report>
class BasicSupervisor
{
  public:
    using Job = BasicSupervisedJob<Report>;
    using Batch = BasicSupervisedReport<Report>;

    struct Options : SupervisorPolicy
    {
        /** Optional report rejection hook applied to successful
         *  attempts (e.g. the thermal-fault probe sim/sweep.hh
         *  installs); a rejected report is a *permanent* shard
         *  failure. Null accepts every report. */
        ReportFaultProbe<Report> fault_probe;
    };

    explicit BasicSupervisor(ThreadPool &pool)
        : BasicSupervisor(pool, Options{})
    {
    }

    BasicSupervisor(ThreadPool &pool, Options options)
        : pool_(pool), options_(std::move(options))
    {
    }

    /** Backoff schedule hook, re-exported for tests and callers that
     *  predict the retry trajectory. */
    static double retryDelayMs(const Options &options, size_t job,
                               unsigned retry)
    {
        return exec::retryDelayMs(options, job, retry);
    }

    /** True when `code` is worth retrying (transient fault). */
    static bool transientError(ErrorCode code)
    {
        return exec::transientError(code);
    }

    /** Adapt a plain sweep job (body pulses once per attempt). */
    static Job fromSweepJob(BasicSweepJob<Report> job)
    {
        return Job{
            std::move(job.label),
            [body = std::move(job.body)](JobContext &context)
                -> Result<Report> {
                if (!context.pulse()) {
                    return Result<Report>::failure(
                        ErrorCode::BudgetExhausted,
                        "attempt aborted before the shard body ran");
                }
                Result<Report> result = body();
                (void)context.pulse();
                return result;
            }};
    }

    /**
     * Run every job under supervision; blocks until each has a final
     * outcome (the calling thread is the monitor and also drains
     * pool tasks). With run_to_completion (default) the Result is
     * always a full batch report. In fail-fast mode a permanent
     * failure cancels jobs that have not started and the batch
     * surfaces the smallest-index failed job's Error, its message
     * prefixed with the job label — transient faults still retry
     * first, so only exhausted or permanent failures fail the batch.
     */
    Result<Batch> run(const std::vector<Job> &jobs) const
    {
        using Clock = detail::SweepClock;
        const auto t_start = Clock::now();
        const ExecCounters before = pool_.counters();
        const size_t n = jobs.size();
        const bool fail_fast = !options_.run_to_completion;

        Batch sup;
        sup.reports.resize(n);
        sup.records.resize(n);

        // Per-job supervision state. Only `attempt_done` (and the
        // JobContext atomics) cross threads: the worker writes the
        // attempt's result fields, then stores attempt_done with
        // release order; the monitor reads it with acquire before
        // touching anything else. Everything else is
        // monitor-private.
        struct Slot
        {
            std::unique_ptr<JobContext> context;
            std::atomic<bool> attempt_done{false};
            std::optional<Error> error;
            std::optional<Report> report;
            bool skipped = false;
            unsigned attempts = 0;
            bool running = false;
            bool waiting = false;
            bool finalized = false;
            typename Clock::time_point not_before{};
            std::vector<double> backoff_ms;
        };
        std::vector<Slot> slots(n);
        std::atomic<bool> cancel{false};
        size_t finalized = 0;

        auto startAttempt = [&](size_t i) {
            Slot &slot = slots[i];
            slot.waiting = false;
            slot.running = true;
            slot.error.reset();
            slot.report.reset();
            slot.skipped = false;
            slot.attempt_done.store(false, std::memory_order_relaxed);
            slot.context = std::make_unique<JobContext>();
            slot.context->start(options_.deadline_ms);
            ++slot.attempts;
            JobContext *context = slot.context.get();
            pool_.submit([&jobs, &slots, &cancel, fail_fast, i,
                          context] {
                Slot &s = slots[i];
                if (fail_fast &&
                    cancel.load(std::memory_order_relaxed)) {
                    // Mirror the plain runner: shards not yet started
                    // at cancellation never run and surface no error.
                    s.skipped = true;
                } else {
                    Result<Report> result = jobs[i].body(*context);
                    if (result.ok())
                        s.report = result.takeValue();
                    else
                        s.error = result.error();
                }
                s.attempt_done.store(true, std::memory_order_release);
            });
        };

        auto finalize = [&](size_t i, JobOutcome outcome,
                            Error error) {
            Slot &slot = slots[i];
            JobRecord &record = sup.records[i];
            record.outcome = outcome;
            record.error = std::move(error);
            slot.finalized = true;
            ++finalized;
            if (fail_fast && (outcome == JobOutcome::TimedOut ||
                              outcome == JobOutcome::Quarantined))
                cancel.store(true, std::memory_order_relaxed);
        };

        // Classify a completed attempt: collect the report, schedule
        // a backoff retry, or finalize the job. Monitor-thread only.
        auto collect = [&](size_t i) {
            Slot &slot = slots[i];
            slot.running = false;
            JobRecord &record = sup.records[i];
            record.attempts = slot.attempts;
            record.heartbeats = slot.context->heartbeats();
            record.backoff_ms = slot.backoff_ms;

            if (slot.skipped) {
                // Cancelled before it started (fail-fast); keep it
                // out of the surfaced-error scan below.
                finalize(i, JobOutcome::Quarantined,
                         Error{ErrorCode::BudgetExhausted,
                               "cancelled before the shard started"});
                return;
            }
            if (slot.context->aborted()) {
                // Deadline overrun is permanent: a stalled shard is
                // not I/O flakiness, and its partial work is
                // untrusted.
                finalize(
                    i, JobOutcome::TimedOut,
                    Error{ErrorCode::BudgetExhausted,
                          "deadline of " +
                              std::to_string(options_.deadline_ms) +
                              " ms exceeded after " +
                              std::to_string(record.heartbeats) +
                              " heartbeats"});
                return;
            }
            if (slot.report && options_.fault_probe) {
                std::optional<Error> rejected =
                    options_.fault_probe(*slot.report);
                if (rejected) {
                    slot.error = std::move(*rejected);
                    slot.report.reset();
                }
            }
            if (slot.report) {
                slot.report->exec.threads = pool_.size();
                pool_.fillPlacement(slot.report->exec);
                slot.report->exec.wall_ms = slot.context->elapsedMs();
                sup.reports[i] = std::move(*slot.report);
                finalize(i,
                         slot.attempts > 1 ? JobOutcome::Retried
                                           : JobOutcome::Ok,
                         Error{});
                return;
            }

            const Error &error = *slot.error;
            const unsigned retries_used = slot.attempts - 1;
            if (transientError(error.code) &&
                retries_used < options_.max_retries) {
                const double delay =
                    exec::retryDelayMs(options_, i, retries_used);
                slot.backoff_ms.push_back(delay);
                slot.waiting = true;
                slot.not_before =
                    Clock::now() +
                    std::chrono::duration_cast<
                        typename Clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            delay));
                return;
            }
            finalize(i, JobOutcome::Quarantined, error);
        };

        for (size_t i = 0; i < n; ++i)
            startAttempt(i);

        // The monitor loop: the calling thread collects finished
        // attempts, flags deadline overruns, launches due retries,
        // and drains pool tasks in between (so it contributes work
        // instead of idling — and so size-1 pools make progress at
        // all).
        while (finalized < n) {
            bool progressed = false;
            for (size_t i = 0; i < n; ++i) {
                Slot &slot = slots[i];
                if (slot.finalized)
                    continue;
                if (slot.running) {
                    if (slot.attempt_done.load(
                            std::memory_order_acquire)) {
                        collect(i);
                        progressed = true;
                    } else if (options_.deadline_ms > 0.0 &&
                               !slot.context->aborted() &&
                               slot.context->elapsedMs() >
                                   options_.deadline_ms) {
                        // Watchdog: the attempt observes the abort at
                        // its next pulse() and returns; collect()
                        // classifies it TimedOut once it does.
                        slot.context->abort();
                    }
                } else if (slot.waiting) {
                    if (fail_fast &&
                        cancel.load(std::memory_order_relaxed)) {
                        finalize(
                            i, JobOutcome::Quarantined,
                            Error{ErrorCode::BudgetExhausted,
                                  "cancelled while awaiting retry"});
                        slots[i].skipped = true;
                        progressed = true;
                    } else if (Clock::now() >= slot.not_before) {
                        startAttempt(i);
                        progressed = true;
                    }
                }
            }
            if (finalized >= n)
                break;
            if (!progressed && !pool_.tryRunOneTask()) {
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        options_.watchdog_poll_ms));
            }
        }

        if (fail_fast) {
            // Surface the smallest-index real failure, exactly as
            // the plain runner: deterministic even when several
            // shards fault concurrently; skipped shards don't count.
            for (size_t i = 0; i < n; ++i) {
                const JobRecord &record = sup.records[i];
                if (slots[i].skipped)
                    continue;
                if (record.outcome == JobOutcome::TimedOut ||
                    record.outcome == JobOutcome::Quarantined) {
                    return Error{record.error.code,
                                 "shard '" + jobs[i].label + "': " +
                                     record.error.message};
                }
            }
        }

        for (size_t i = 0; i < n; ++i) {
            switch (sup.records[i].outcome) {
              case JobOutcome::Ok:          ++sup.ok_count; break;
              case JobOutcome::Retried:     ++sup.retried_count; break;
              case JobOutcome::TimedOut:    ++sup.timed_out_count;
                break;
              case JobOutcome::Quarantined:
                ++sup.quarantined_count;
                sup.quarantined.push_back(jobs[i].label);
                break;
            }
        }

        const ExecCounters delta = pool_.counters() - before;
        sup.exec.threads = pool_.size();
        pool_.fillPlacement(sup.exec);
        sup.exec.tasks_run = delta.tasks_run;
        sup.exec.steals = delta.steals;
        sup.exec.wall_ms = detail::millisSince(t_start);
        return sup;
    }

  private:
    ThreadPool &pool_;
    Options options_;
};

} // namespace exec
} // namespace nanobus

#endif // NANOBUS_EXEC_SUPERVISOR_HH
