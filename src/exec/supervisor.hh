/**
 * @file
 * Supervisor — fault-tolerant execution of sweep shards on top of
 * the SweepRunner job model (docs/ROBUSTNESS.md, "Supervision &
 * retry").
 *
 * SweepRunner's contract is fail-fast: the first shard Error cancels
 * the batch. That is right for interactive runs but wrong for
 * fleet-scale sweeps, where one flaky filesystem read or one hung
 * worker must not discard hours of finished shards. The Supervisor
 * adds the policy layer:
 *
 *  - *Fault taxonomy.* A shard Error is classified by its ErrorCode:
 *    IoError is transient (a retry against the reopened source can
 *    succeed); everything else — contract violations, parse errors,
 *    thermal runaway — is permanent and quarantines the job.
 *  - *Bounded retry with deterministic backoff.* Transient failures
 *    are retried up to Options::max_retries times. The backoff delay
 *    for (job, attempt) is a pure function of the seeded Rng stream —
 *    no wall-clock feeds the decision path, so which jobs retry, how
 *    often, and with what delays is reproducible run over run.
 *  - *Deadlines and the heartbeat watchdog.* Job bodies receive a
 *    JobContext and call pulse() at natural progress points. The
 *    monitor (the calling thread, which also drains the pool) aborts
 *    any attempt that outlives Options::deadline_ms; the attempt
 *    observes the abort at its next pulse() and returns. A pulse()
 *    also self-checks the deadline, so a stalled job times out even
 *    at pool size 1 where no monitor can run concurrently. Deadline
 *    overruns are permanent (outcome TimedOut): a stalled shard is
 *    not I/O flakiness.
 *  - *Run-to-completion.* By default every job is driven to a final
 *    outcome (Ok / Retried / TimedOut / Quarantined) and the batch
 *    returns a degraded-mode SupervisedReport with per-job records;
 *    Options::run_to_completion = false restores SweepRunner's
 *    fail-fast contract (smallest-index permanent failure, label-
 *    prefixed, surfaces as the batch Error).
 *
 * Determinism: reports are collected by job index, and a job's
 * result is produced by its (isolated) body exactly as under
 * SweepRunner — for jobs that succeed, the reports are bit-identical
 * at every pool size. Timing decides only *scheduling* (and, with
 * deadlines armed, whether a genuinely slow shard times out); tests
 * drive the timeout path deterministically with the injected
 * FaultSite::Stall hang.
 */

#ifndef NANOBUS_EXEC_SUPERVISOR_HH
#define NANOBUS_EXEC_SUPERVISOR_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exec/sweep_runner.hh"
#include "exec/thread_pool.hh"
#include "sim/experiment.hh"
#include "util/result.hh"

namespace nanobus {
namespace exec {

/** Final state of one supervised job. */
enum class JobOutcome {
    /** Succeeded on the first attempt. */
    Ok,
    /** Succeeded after one or more transient-fault retries. */
    Retried,
    /** An attempt outlived its deadline and was aborted. */
    TimedOut,
    /** Failed permanently (or exhausted its retry budget). */
    Quarantined,
};

/** Readable name of a job outcome. */
const char *jobOutcomeName(JobOutcome outcome);

/**
 * Per-attempt liveness channel between a supervised job body and the
 * watchdog. Bodies call pulse() at natural progress points (per
 * sweep, per batch); the supervisor reads the published heartbeat
 * counter and flags the abort when the attempt outlives its
 * deadline. All members are atomics: pulse() runs on the worker,
 * the monitor on the calling thread.
 */
class JobContext
{
  public:
    JobContext() = default;
    JobContext(const JobContext &) = delete;
    JobContext &operator=(const JobContext &) = delete;

    /**
     * Publish one heartbeat and poll for cancellation. Returns false
     * once the supervisor has aborted this attempt (deadline
     * exceeded) — the body should return promptly with any Error;
     * the attempt's result is discarded either way.
     *
     * Also services FaultSite::Stall: a firing injection parks the
     * call in a sleep loop until the attempt is aborted, which is
     * how tests simulate a hung worker without timing flakes.
     */
    [[nodiscard]] bool pulse();

    /** Heartbeats published so far (monitor-side observability). */
    uint64_t heartbeats() const
    {
        return heartbeats_.load(std::memory_order_relaxed);
    }

    /** True once the attempt has been told to stop. */
    bool aborted() const
    {
        return abort_.load(std::memory_order_acquire);
    }

  private:
    friend class Supervisor;

    /** Arm the deadline clock; called once before the attempt runs. */
    void start(double deadline_ms);

    /** Tell the attempt to stop (idempotent). */
    void abort() { abort_.store(true, std::memory_order_release); }

    /** Milliseconds since start(). */
    double elapsedMs() const;

    /** aborted(), plus the self-deadline check that lets a stalled
     *  attempt escape with no monitor running (pool size 1). */
    bool shouldAbort();

    std::atomic<uint64_t> heartbeats_{0};
    std::atomic<bool> abort_{false};
    std::chrono::steady_clock::time_point start_{};
    double deadline_ms_ = 0.0;
};

/** One supervised shard: a SweepJob whose body sees its JobContext. */
struct SupervisedJob
{
    /** Shard label for logs, JSON output, and error messages. */
    std::string label;
    /**
     * The shard body. May run several times (one per attempt), each
     * time with a fresh JobContext; every attempt must construct its
     * own simulators and sources from scratch, which is what makes
     * retry sound.
     */
    std::function<Result<SweepReport>(JobContext &)> body;
};

/** Outcome record of one supervised job. */
struct JobRecord
{
    /** Final state. */
    JobOutcome outcome = JobOutcome::Ok;
    /** Attempts consumed (>= 1 for every job that ran). */
    unsigned attempts = 0;
    /** Heartbeats the final attempt published. */
    uint64_t heartbeats = 0;
    /** Backoff delays applied before each retry [ms]. */
    std::vector<double> backoff_ms;
    /** Final error (TimedOut and Quarantined outcomes). */
    Error error;
};

/** Degraded-mode outcome of a run-to-completion batch. */
struct SupervisedReport
{
    /** reports[i] belongs to jobs[i]; meaningful only when
     *  records[i] ended Ok or Retried (default-constructed
     *  otherwise). */
    std::vector<SweepReport> reports;
    /** records[i] is job i's outcome record; always full-size. */
    std::vector<JobRecord> records;
    /** Labels of quarantined jobs, in job order. */
    std::vector<std::string> quarantined;
    /** Outcome tallies (sum equals the job count). */
    size_t ok_count = 0;
    size_t retried_count = 0;
    size_t timed_out_count = 0;
    size_t quarantined_count = 0;
    /** Batch-wide execution counters (pool deltas + wall time). */
    ExecStats exec;

    /** True when every job ended Ok or Retried. */
    bool allSucceeded() const
    {
        return timed_out_count == 0 && quarantined_count == 0;
    }
};

/** Supervised execution of SupervisedJob batches on a ThreadPool. */
class Supervisor
{
  public:
    struct Options
    {
        /** Retry attempts after the first, per job, for transient
         *  faults. */
        unsigned max_retries = 2;
        /** First retry's backoff upper bound [ms]; the delay is
         *  drawn uniformly from [0, base * factor^retry). 0 retries
         *  immediately. */
        double backoff_base_ms = 1.0;
        /** Exponential growth factor per retry. */
        double backoff_factor = 2.0;
        /** Seed of the backoff stream; same seed, same delays. */
        uint64_t backoff_seed = 0x6e62757353757056ull;
        /** Per-attempt deadline [ms]; 0 disables the watchdog. */
        double deadline_ms = 0.0;
        /** Monitor sleep when the pool has nothing to drain [ms]. */
        double watchdog_poll_ms = 1.0;
        /** Drive every job to a final outcome (degraded-mode
         *  report); false = fail-fast like SweepRunner. */
        bool run_to_completion = true;
        /** Treat a contained ThermalFault inside a report as a
         *  permanent shard failure (ErrorCode::ThermalRunaway),
         *  exactly as SweepRunner::Options::fault_on_thermal. */
        bool fault_on_thermal = false;
    };

    explicit Supervisor(ThreadPool &pool);
    Supervisor(ThreadPool &pool, Options options);

    /**
     * Run every job under supervision; blocks until each has a final
     * outcome (the calling thread is the monitor and also drains
     * pool tasks). With run_to_completion (default) the Result is
     * always a SupervisedReport. In fail-fast mode a permanent
     * failure cancels jobs that have not started and the batch
     * surfaces the smallest-index failed job's Error, its message
     * prefixed with the job label — transient faults still retry
     * first, so only exhausted or permanent failures fail the batch.
     */
    Result<SupervisedReport> run(
        const std::vector<SupervisedJob> &jobs) const;

    /** True when `code` is worth retrying (transient fault). */
    static bool transientError(ErrorCode code)
    {
        return code == ErrorCode::IoError;
    }

    /**
     * Backoff delay [ms] before retry `retry` (0-based) of job
     * `job`: uniform in [0, base * factor^retry), drawn from an Rng
     * seeded by (seed, job, retry) only. A pure function — no
     * wall-clock, no cross-job state.
     */
    static double retryDelayMs(const Options &options, size_t job,
                               unsigned retry);

    /** Adapt a plain SweepJob (body pulses once per attempt). */
    static SupervisedJob fromSweepJob(SweepJob job);

    /**
     * Convenience shard builder: one tryRobustTraceSweep cell,
     * pulsing around the sweep. Per-attempt isolation comes free —
     * the body constructs its reader and simulators from scratch on
     * every attempt.
     */
    static SupervisedJob traceSweepJob(
        std::string label, std::string trace_path,
        const TechnologyNode &tech, BusSimConfig config,
        RobustSweepOptions sweep_options = RobustSweepOptions());

  private:
    ThreadPool &pool_;
    Options options_;
};

} // namespace exec
} // namespace nanobus

#endif // NANOBUS_EXEC_SUPERVISOR_HH
