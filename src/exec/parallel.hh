/**
 * @file
 * Deterministic data-parallel constructs over a ThreadPool.
 *
 * Everything here obeys one contract, spelled out in
 * docs/PARALLELISM.md: **results are bit-identical at every pool
 * size, including 1.** The ingredients:
 *
 *  - *Fixed chunking.* A range [0, n) is split into chunks whose
 *    boundaries depend only on n and the grain — never on the thread
 *    count or on runtime load. chunkGrain() is the single place the
 *    default rule lives.
 *  - *Disjoint writes.* parallelFor gives each chunk a half-open
 *    [begin, end) slice; bodies write only to slots indexed by their
 *    own slice.
 *  - *Ordered combination.* parallelReduce evaluates each chunk
 *    serially left-to-right, stores the partials in a pre-sized
 *    vector, and folds them in ascending chunk order on the calling
 *    thread. Thread count changes who computes a partial, never what
 *    is computed or in which order partials combine.
 *
 * Waiting callers drain the pool (ThreadPool::tryRunOneTask) instead
 * of idling, so a pool of size N really applies N threads to the
 * batch. Nested parallel regions — a body that itself calls
 * parallelFor — run serially by policy (ThreadPool::onPoolThread),
 * which keeps worker threads from blocking on work that is queued
 * behind them.
 *
 * Exceptions thrown by a body are captured and rethrown on the
 * calling thread after the whole batch drains (first one captured
 * wins; the batch still completes so the pool stays consistent).
 */

#ifndef NANOBUS_EXEC_PARALLEL_HH
#define NANOBUS_EXEC_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "exec/thread_pool.hh"

namespace nanobus {
namespace exec {

/**
 * The fixed chunking rule: grain (elements per chunk) for a range of
 * `n` elements. `requested` == 0 selects the default — the smallest
 * grain that keeps the batch at or under kDefaultMaxChunks chunks.
 * Deliberately independent of the pool size; see the file comment.
 */
constexpr size_t kDefaultMaxChunks = 64;

inline size_t
chunkGrain(size_t n, size_t requested)
{
    if (requested > 0)
        return requested;
    size_t grain = (n + kDefaultMaxChunks - 1) / kDefaultMaxChunks;
    return grain > 0 ? grain : 1;
}

/** Number of chunks the fixed rule yields for (n, grain). */
inline size_t
chunkCount(size_t n, size_t grain)
{
    return grain == 0 ? 0 : (n + grain - 1) / grain;
}

namespace detail {

/** Completion latch shared by one batch's tasks. */
struct BatchState
{
    std::mutex mutex;
    std::condition_variable cv;
    size_t remaining = 0;
    std::exception_ptr first_error;

    void finishOne()
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (--remaining == 0)
            cv.notify_all();
    }

    void captureError()
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_error)
            first_error = std::current_exception();
    }
};

} // namespace detail

/**
 * Apply `body(begin, end)` over [0, n) split into fixed chunks.
 * Chunks run concurrently on the pool; the caller participates until
 * the batch drains. Serial (inline, ascending order) when the pool
 * has size 1, when there is a single chunk, or when called from
 * inside a pool task (nested region).
 *
 * @param grain Elements per chunk; 0 = default rule (chunkGrain).
 */
template <typename Body>
void
parallelFor(ThreadPool &pool, size_t n, Body &&body, size_t grain = 0)
{
    if (n == 0)
        return;
    const size_t g = chunkGrain(n, grain);
    const size_t chunks = chunkCount(n, g);

    if (pool.size() <= 1 || chunks <= 1 || ThreadPool::onPoolThread()) {
        for (size_t c = 0; c < chunks; ++c) {
            size_t begin = c * g;
            size_t end = begin + g < n ? begin + g : n;
            body(begin, end);
        }
        return;
    }

    auto state = std::make_shared<detail::BatchState>();
    state->remaining = chunks;
    for (size_t c = 0; c < chunks; ++c) {
        size_t begin = c * g;
        size_t end = begin + g < n ? begin + g : n;
        // Hint with the chunk index: chunk c prefers worker
        // (c % workers) every batch, so with pinning a chunk keeps
        // revisiting the node that first-touched its data. Placement
        // only — results are identical whichever thread runs it.
        pool.submitHinted(
            [state, begin, end, &body] {
                try {
                    body(begin, end);
                } catch (...) {
                    state->captureError();
                }
                state->finishOne();
            },
            c);
    }

    // Participate until the batch drains, then sleep for the tail
    // that is still running on workers.
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(state->mutex);
            if (state->remaining == 0)
                break;
        }
        if (!pool.tryRunOneTask()) {
            std::unique_lock<std::mutex> lock(state->mutex);
            state->cv.wait(lock,
                           [&] { return state->remaining == 0; });
            break;
        }
    }
    if (state->first_error)
        std::rethrow_exception(state->first_error);
}

/**
 * Deterministic chunked reduction over [0, n).
 *
 * `chunk(begin, end)` returns the partial for one chunk (compute it
 * serially, left to right); `combine(acc, partial)` folds partials in
 * ascending chunk order starting from `init`, on the calling thread.
 *
 * The reduction order is therefore a pure function of (n, grain):
 * bit-identical at every pool size. Note that for floating-point
 * sums this order differs from a flat element-by-element
 * std::accumulate unless the additions are exact (integers, or
 * values whose sums are exactly representable) — the determinism
 * contract is "same bits at any thread count", not "same bits as any
 * other summation order".
 */
template <typename T, typename ChunkFn, typename CombineFn>
T
parallelReduce(ThreadPool &pool, size_t n, T init, ChunkFn &&chunk,
               CombineFn &&combine, size_t grain = 0)
{
    if (n == 0)
        return init;
    const size_t g = chunkGrain(n, grain);
    const size_t chunks = chunkCount(n, g);

    std::vector<T> partials(chunks, init);
    parallelFor(pool, n,
                [&](size_t begin, size_t end) {
                    partials[begin / g] = chunk(begin, end);
                },
                g);

    T acc = std::move(init);
    for (size_t c = 0; c < chunks; ++c)
        acc = combine(std::move(acc), std::move(partials[c]));
    return acc;
}

} // namespace exec
} // namespace nanobus

#endif // NANOBUS_EXEC_PARALLEL_HH
