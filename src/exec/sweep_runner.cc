#include "exec/sweep_runner.hh"

#include <atomic>
#include <chrono>
#include <limits>
#include <mutex>

#include "exec/parallel.hh"

namespace nanobus {
namespace exec {

namespace {

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start).count();
}

} // anonymous namespace

SweepRunner::SweepRunner(ThreadPool &pool)
    : SweepRunner(pool, Options{})
{
}

SweepRunner::SweepRunner(ThreadPool &pool, Options options)
    : pool_(pool), options_(options)
{
}

SweepJob
SweepRunner::traceSweepJob(std::string label, std::string trace_path,
                           const TechnologyNode &tech,
                           BusSimConfig config,
                           size_t trace_error_budget)
{
    return SweepJob{
        std::move(label),
        [trace_path = std::move(trace_path), &tech, config,
         trace_error_budget]() -> Result<SweepReport> {
            return runRobustTraceSweep(trace_path, tech, config,
                                       nullptr, trace_error_budget);
        }};
}

Result<BatchReport>
SweepRunner::run(const std::vector<SweepJob> &jobs) const
{
    const auto t_start = Clock::now();
    const ExecCounters before = pool_.counters();

    BatchReport batch;
    batch.reports.resize(jobs.size());

    // Shared shard state. `first_failed` carries the smallest index
    // of a failed job so the surfaced error is deterministic no
    // matter which shard faulted first in wall-clock terms.
    std::atomic<bool> cancel{false};
    std::mutex error_mutex;
    size_t first_failed = std::numeric_limits<size_t>::max();
    Error first_error;

    auto runShard = [&](size_t i) {
        if (cancel.load(std::memory_order_relaxed))
            return;
        const auto shard_start = Clock::now();
        Result<SweepReport> result = jobs[i].body();

        // Collect or escalate, under per-shard isolation: only the
        // error bookkeeping is shared, and it is mutex-guarded.
        bool failed = !result.ok();
        Error error;
        if (failed) {
            error = result.error();
        } else {
            SweepReport report = result.takeValue();
            if (options_.fault_on_thermal &&
                (!report.instruction_faults.empty() ||
                 !report.data_faults.empty())) {
                failed = true;
                const ThermalFault &fault =
                    report.instruction_faults.empty()
                        ? report.data_faults.front()
                        : report.instruction_faults.front();
                error = Error{ErrorCode::ThermalRunaway,
                              fault.message.empty()
                                  ? std::string(thermalFaultKindName(
                                        fault.kind))
                                  : fault.message};
            } else {
                report.exec.threads = pool_.size();
                pool_.fillPlacement(report.exec);
                report.exec.wall_ms = millisSince(shard_start);
                batch.reports[i] = std::move(report);
            }
        }
        if (failed) {
            cancel.store(true, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(error_mutex);
            if (i < first_failed) {
                first_failed = i;
                first_error = Error{
                    error.code,
                    "shard '" + jobs[i].label + "': " + error.message};
            }
        }
    };

    // Grain 1: one shard per task, so the pool load-balances whole
    // simulations. Shard order of *execution* is nondeterministic;
    // everything observable is collected by index.
    parallelFor(pool_, jobs.size(),
                [&](size_t begin, size_t end) {
                    for (size_t i = begin; i < end; ++i)
                        runShard(i);
                },
                1);

    if (first_failed != std::numeric_limits<size_t>::max())
        return first_error;

    const ExecCounters delta = pool_.counters() - before;
    batch.exec.threads = pool_.size();
    pool_.fillPlacement(batch.exec);
    batch.exec.tasks_run = delta.tasks_run;
    batch.exec.steals = delta.steals;
    batch.exec.wall_ms = millisSince(t_start);
    return batch;
}

} // namespace exec
} // namespace nanobus
