/**
 * @file
 * Co-planar bus cross-section geometry (Fig 1(a) of the paper).
 *
 * N parallel rectangular wires sit side by side in the top metal
 * layer, a ground plane (the layer below) lies t_ild under the wire
 * bottoms, and a homogeneous dielectric of relative permittivity
 * epsilon_r fills the space. All lengths are metres; capacitances
 * derived from this geometry are per-unit-length of the bus.
 */

#ifndef NANOBUS_EXTRACTION_GEOMETRY_HH
#define NANOBUS_EXTRACTION_GEOMETRY_HH

#include "tech/technology.hh"
#include "util/units.hh"

namespace nanobus {

/** Cross-section geometry of a co-planar bus over a ground plane. */
struct BusGeometry
{
    /** Number of bus wires. */
    unsigned num_wires = 0;
    /** Wire width. */
    Meters width;
    /** Wire thickness. */
    Meters thickness;
    /** Edge-to-edge spacing between adjacent wires. */
    Meters spacing;
    /** Distance from ground plane (y = 0) to the wire bottoms. */
    Meters height;
    /** Relative permittivity of the surrounding dielectric. */
    double epsilon_r = 1.0;

    /** Geometry for a bus of n wires in the given technology node. */
    static BusGeometry forTechnology(const TechnologyNode &tech,
                                     unsigned n);

    /** Wire pitch (width + spacing). */
    Meters pitch() const { return width + spacing; }

    /** x coordinate of the left edge of wire i (wire 0 at x = 0). */
    Meters wireLeft(unsigned i) const
    {
        return static_cast<double>(i) * pitch();
    }

    /** x coordinate of the centre of wire i. */
    Meters wireCentre(unsigned i) const
    {
        return wireLeft(i) + 0.5 * width;
    }

    /** Validate invariants; calls fatal() on bad values. */
    void validate() const;
};

} // namespace nanobus

#endif // NANOBUS_EXTRACTION_GEOMETRY_HH
