/**
 * @file
 * Closed-form interconnect capacitance estimates (Sakurai-Tamaru).
 *
 * Independent analytical formulas used to sanity-check the BEM
 * extractor: they model an isolated line (or line pair) over a ground
 * plane, so they ignore the multi-wire shielding a full bus solve
 * captures, and agree with field solvers only to within tens of
 * percent. Tests use them as an order-of-magnitude oracle.
 *
 * Reference: T. Sakurai and K. Tamaru, "Simple formulas for two- and
 * three-dimensional capacitances," IEEE TED 30(2), 1983.
 */

#ifndef NANOBUS_EXTRACTION_ANALYTICAL_HH
#define NANOBUS_EXTRACTION_ANALYTICAL_HH

#include "extraction/geometry.hh"
#include "util/units.hh"

namespace nanobus {

/**
 * Self capacitance per unit length of an isolated rectangular line
 * of width w and thickness t at height h over a ground plane:
 * C = eps * (1.15 (w/h) + 2.80 (t/h)^0.222).
 */
FaradsPerMeter sakuraiSelfCapacitance(Meters w, Meters t, Meters h,
                                      double epsilon_r);

/**
 * Coupling capacitance per unit length between two parallel lines
 * with edge-to-edge spacing s over a ground plane:
 * C = eps * (0.03 (w/h) + 0.83 (t/h) - 0.07 (t/h)^0.222)
 *         * (s/h)^-1.34.
 */
FaradsPerMeter sakuraiCouplingCapacitance(Meters w, Meters t,
                                          Meters h, Meters s,
                                          double epsilon_r);

/** Parallel-plate capacitance per unit length, eps * w / h. */
FaradsPerMeter parallelPlateCapacitance(Meters w, Meters h,
                                        double epsilon_r);

/** Self capacitance for the centre wire of the given bus geometry. */
FaradsPerMeter sakuraiSelfCapacitance(const BusGeometry &geometry);

/** Adjacent coupling capacitance for the given bus geometry. */
FaradsPerMeter sakuraiCouplingCapacitance(const BusGeometry &geometry);

} // namespace nanobus

#endif // NANOBUS_EXTRACTION_ANALYTICAL_HH
