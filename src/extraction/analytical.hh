/**
 * @file
 * Closed-form interconnect capacitance estimates (Sakurai-Tamaru).
 *
 * Independent analytical formulas used to sanity-check the BEM
 * extractor: they model an isolated line (or line pair) over a ground
 * plane, so they ignore the multi-wire shielding a full bus solve
 * captures, and agree with field solvers only to within tens of
 * percent. Tests use them as an order-of-magnitude oracle.
 *
 * Reference: T. Sakurai and K. Tamaru, "Simple formulas for two- and
 * three-dimensional capacitances," IEEE TED 30(2), 1983.
 */

#ifndef NANOBUS_EXTRACTION_ANALYTICAL_HH
#define NANOBUS_EXTRACTION_ANALYTICAL_HH

#include "extraction/geometry.hh"

namespace nanobus {

/**
 * Self capacitance per unit length [F/m] of an isolated rectangular
 * line of width w and thickness t at height h over a ground plane:
 * C = eps * (1.15 (w/h) + 2.80 (t/h)^0.222).
 */
double sakuraiSelfCapacitance(double w, double t, double h,
                              double epsilon_r);

/**
 * Coupling capacitance per unit length [F/m] between two parallel
 * lines with edge-to-edge spacing s over a ground plane:
 * C = eps * (0.03 (w/h) + 0.83 (t/h) - 0.07 (t/h)^0.222)
 *         * (s/h)^-1.34.
 */
double sakuraiCouplingCapacitance(double w, double t, double h,
                                  double s, double epsilon_r);

/** Parallel-plate capacitance per unit length, eps * w / h [F/m]. */
double parallelPlateCapacitance(double w, double h, double epsilon_r);

/** Self capacitance for the centre wire of the given bus geometry. */
double sakuraiSelfCapacitance(const BusGeometry &geometry);

/** Adjacent coupling capacitance for the given bus geometry. */
double sakuraiCouplingCapacitance(const BusGeometry &geometry);

} // namespace nanobus

#endif // NANOBUS_EXTRACTION_ANALYTICAL_HH
