/**
 * @file
 * Shield-wire analysis.
 *
 * The physical-design alternative to the paper's encoding schemes:
 * interleave grounded shield wires between signal wires (layout
 * S G S G ... S). Shields convert signal-to-signal coupling into
 * capacitance to ground — eliminating Miller-degraded toggles and
 * most coupling energy — at the cost of roughly doubling the bus
 * footprint.
 *
 * Electrically, grounding a conductor pins its potential at 0, so
 * the effective Maxwell matrix over the signal wires is simply the
 * signal-row/column submatrix of the full extraction; couplings to
 * shields fold into each signal's ground capacitance. This module
 * performs that reduction on BEM extractions.
 */

#ifndef NANOBUS_EXTRACTION_SHIELDING_HH
#define NANOBUS_EXTRACTION_SHIELDING_HH

#include <vector>

#include "extraction/bem.hh"
#include "extraction/capmatrix.hh"
#include "tech/technology.hh"

namespace nanobus {

/**
 * Reduce a full Maxwell matrix to the effective capacitance
 * structure of a subset of conductors, with every conductor *not*
 * in `keep` held at ground.
 */
CapacitanceMatrix reduceGrounded(const Matrix &maxwell,
                                 const std::vector<unsigned> &keep);

/**
 * Effective capacitance matrix of `signals` signal wires with
 * grounded shields interleaved (2*signals - 1 physical wires at the
 * node's minimum pitch), extracted with the BEM solver.
 */
CapacitanceMatrix shieldedSignalMatrix(
    const TechnologyNode &tech, unsigned signals,
    const BemExtractor::Options &options = BemExtractor::Options());

/**
 * Reference: the same `signals` wires unshielded at minimum pitch
 * (the paper's baseline bus), extracted with the BEM solver.
 */
CapacitanceMatrix unshieldedSignalMatrix(
    const TechnologyNode &tech, unsigned signals,
    const BemExtractor::Options &options = BemExtractor::Options());

/**
 * Area-equalized reference: `signals` wires with doubled spacing,
 * occupying the same footprint as the shielded layout but spending
 * the area on distance instead of shields.
 */
CapacitanceMatrix spreadSignalMatrix(
    const TechnologyNode &tech, unsigned signals,
    const BemExtractor::Options &options = BemExtractor::Options());

} // namespace nanobus

#endif // NANOBUS_EXTRACTION_SHIELDING_HH
