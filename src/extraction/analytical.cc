#include "extraction/analytical.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace nanobus {

FaradsPerMeter
sakuraiSelfCapacitance(Meters w, Meters t, Meters h, double epsilon_r)
{
    if (w.raw() <= 0.0 || t.raw() <= 0.0 || h.raw() <= 0.0)
        fatal("sakuraiSelfCapacitance: non-positive geometry");
    // Geometry enters only through dimensionless ratios; the fitted
    // coefficients carry the F/m.
    const FaradsPerMeter eps{epsilon_r * units::epsilon0};
    return eps * (1.15 * (w / h) + 2.80 * std::pow(t / h, 0.222));
}

FaradsPerMeter
sakuraiCouplingCapacitance(Meters w, Meters t, Meters h, Meters s,
                           double epsilon_r)
{
    if (w.raw() <= 0.0 || t.raw() <= 0.0 || h.raw() <= 0.0 ||
        s.raw() <= 0.0)
        fatal("sakuraiCouplingCapacitance: non-positive geometry");
    const FaradsPerMeter eps{epsilon_r * units::epsilon0};
    double body = 0.03 * (w / h) + 0.83 * (t / h) -
        0.07 * std::pow(t / h, 0.222);
    return eps * body * std::pow(s / h, -1.34);
}

FaradsPerMeter
parallelPlateCapacitance(Meters w, Meters h, double epsilon_r)
{
    if (w.raw() <= 0.0 || h.raw() <= 0.0)
        fatal("parallelPlateCapacitance: non-positive geometry");
    return FaradsPerMeter{epsilon_r * units::epsilon0} * (w / h);
}

FaradsPerMeter
sakuraiSelfCapacitance(const BusGeometry &geometry)
{
    return sakuraiSelfCapacitance(geometry.width, geometry.thickness,
                                  geometry.height, geometry.epsilon_r);
}

FaradsPerMeter
sakuraiCouplingCapacitance(const BusGeometry &geometry)
{
    return sakuraiCouplingCapacitance(
        geometry.width, geometry.thickness, geometry.height,
        geometry.spacing, geometry.epsilon_r);
}

} // namespace nanobus
