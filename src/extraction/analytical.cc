#include "extraction/analytical.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace nanobus {

double
sakuraiSelfCapacitance(double w, double t, double h, double epsilon_r)
{
    if (w <= 0.0 || t <= 0.0 || h <= 0.0)
        fatal("sakuraiSelfCapacitance: non-positive geometry");
    double eps = epsilon_r * units::epsilon0;
    return eps * (1.15 * (w / h) + 2.80 * std::pow(t / h, 0.222));
}

double
sakuraiCouplingCapacitance(double w, double t, double h, double s,
                           double epsilon_r)
{
    if (w <= 0.0 || t <= 0.0 || h <= 0.0 || s <= 0.0)
        fatal("sakuraiCouplingCapacitance: non-positive geometry");
    double eps = epsilon_r * units::epsilon0;
    double body = 0.03 * (w / h) + 0.83 * (t / h) -
        0.07 * std::pow(t / h, 0.222);
    return eps * body * std::pow(s / h, -1.34);
}

double
parallelPlateCapacitance(double w, double h, double epsilon_r)
{
    if (w <= 0.0 || h <= 0.0)
        fatal("parallelPlateCapacitance: non-positive geometry");
    return epsilon_r * units::epsilon0 * w / h;
}

double
sakuraiSelfCapacitance(const BusGeometry &geometry)
{
    return sakuraiSelfCapacitance(geometry.width, geometry.thickness,
                                  geometry.height, geometry.epsilon_r);
}

double
sakuraiCouplingCapacitance(const BusGeometry &geometry)
{
    return sakuraiCouplingCapacitance(
        geometry.width, geometry.thickness, geometry.height,
        geometry.spacing, geometry.epsilon_r);
}

} // namespace nanobus
