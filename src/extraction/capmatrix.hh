/**
 * @file
 * Per-unit-length bus capacitance matrix.
 *
 * This is the quantity the paper extracts with FastCap (Sec 3.2.1):
 * for every wire its capacitance to ground and its coupling
 * capacitance to every other wire, adjacent or not. The energy model
 * consumes this structure directly; Fig 1(b)'s distribution and the
 * ITRS calibration used for Table 1 live here too.
 */

#ifndef NANOBUS_EXTRACTION_CAPMATRIX_HH
#define NANOBUS_EXTRACTION_CAPMATRIX_HH

#include <string>
#include <vector>

#include "la/matrix.hh"
#include "tech/technology.hh"
#include "util/result.hh"
#include "util/units.hh"

namespace nanobus {

/**
 * Health report of a Maxwell matrix fed to tryFromMaxwell().
 *
 * A physically meaningful Maxwell (short-circuit) capacitance matrix
 * is symmetric, diagonally dominant with positive diagonal, and well
 * conditioned. Extraction noise and injected faults violate these in
 * degrees: mild asymmetry is repaired by symmetrization (recorded
 * here), dominance violations are clamped with a warning, and poor
 * conditioning is reported so downstream consumers can flag the
 * sweep cell instead of trusting garbage.
 */
struct MaxwellValidation
{
    /** Largest |M_ij - M_ji| found before symmetrization. */
    double max_asymmetry = 0.0;
    /** True when asymmetry exceeded tolerance and was repaired. */
    bool symmetrized = false;
    /** Rows where the diagonal is smaller than the off-diagonal sum
     *  (i.e. the implied ground capacitance is negative). */
    unsigned dominance_violations = 0;
    /** Reciprocal 1-norm condition estimate of the (symmetrized)
     *  matrix; 0 when singular. */
    double rcond = 1.0;
    /** Human-readable warnings accumulated during validation. */
    std::vector<std::string> warnings;
};

/**
 * Symmetric per-unit-length capacitance structure of an N-wire bus.
 *
 * Internally stores ground capacitances c_i0 [F/m] and coupling
 * capacitances c_ij >= 0 [F/m] for i != j.
 */
class CapacitanceMatrix
{
  public:
    /** Zero-capacitance matrix for n wires. */
    explicit CapacitanceMatrix(unsigned n);

    /**
     * Build from a Maxwell (short-circuit) capacitance matrix, where
     * diagonal entries are total wire capacitance and off-diagonals
     * are negative couplings: c_ij = -M_ij, c_i0 = sum_j M_ij.
     * Tiny negative couplings from numerical noise are clamped to 0.
     */
    static CapacitanceMatrix fromMaxwell(const Matrix &maxwell);

    /**
     * Checked variant of fromMaxwell(): validates the input
     * (symmetry, diagonal dominance, conditioning) instead of
     * trusting it. Hard defects — non-square, empty, or non-finite
     * matrices — return an Error; soft defects are repaired
     * (symmetrize-and-warn, clamp negative ground capacitance) and
     * recorded in `validation` along with a condition-number warning
     * when the matrix is ill-conditioned or singular.
     */
    [[nodiscard]] static Result<CapacitanceMatrix> tryFromMaxwell(
        const Matrix &maxwell, MaxwellValidation *validation = nullptr);

    /**
     * Analytical fallback matrix calibrated to a technology node:
     * ground capacitance = c_line, adjacent coupling = c_inter from
     * Table 1, and non-adjacent couplings from `ratios`, where
     * ratios[k] is c(i, i+k+2)/c_inter (k = 0 for one intervening
     * wire). Wires beyond the last ratio decay geometrically by the
     * last two ratios' quotient.
     */
    static CapacitanceMatrix analytical(
        const TechnologyNode &tech, unsigned n,
        const std::vector<double> &ratios = defaultNonAdjacentRatios());

    /**
     * Non-adjacent/adjacent coupling ratios observed in our BEM
     * extractions of ITRS geometry (CC2/CC1, CC3/CC1, CC4/CC1).
     */
    static const std::vector<double> &defaultNonAdjacentRatios();

    /** Number of wires. */
    unsigned size() const { return n_; }

    /** Capacitance of wire i to ground. */
    FaradsPerMeter ground(unsigned i) const;

    /** Set the ground capacitance of wire i. */
    void setGround(unsigned i, FaradsPerMeter value);

    /** Coupling capacitance between wires i and j; 0 if i==j. */
    FaradsPerMeter coupling(unsigned i, unsigned j) const;

    /** Set the coupling capacitance between distinct wires i and j. */
    void setCoupling(unsigned i, unsigned j, FaradsPerMeter value);

    /** Total capacitance of wire i (ground + all couplings). */
    FaradsPerMeter total(unsigned i) const;

    /**
     * Fig 1(b) breakdown for wire i: fractions of total(i) in ground,
     * adjacent (CC1), one-apart (CC2), two-apart (CC3), and all
     * farther couplings (CCrest). Fractions sum to 1.
     */
    struct Distribution
    {
        double cgnd = 0.0;
        double cc1 = 0.0;
        double cc2 = 0.0;
        double cc3 = 0.0;
        double ccrest = 0.0;

        /** Share of capacitance in non-adjacent couplings. */
        double nonAdjacent() const { return cc2 + cc3 + ccrest; }
    };

    /** Capacitance distribution of wire i. */
    Distribution distribution(unsigned i) const;

    /**
     * Return a copy rescaled so the *centre* wire matches Table 1:
     * its ground capacitance equals tech.c_line and its adjacent
     * coupling equals tech.c_inter, with all couplings of the same
     * kind scaled by the same factors (shape of the extracted matrix
     * is preserved; this mirrors how the paper anchors Table 1).
     */
    CapacitanceMatrix calibratedTo(const TechnologyNode &tech) const;

  private:
    unsigned n_;
    std::vector<double> ground_;
    Matrix coupling_; // symmetric, zero diagonal
};

} // namespace nanobus

#endif // NANOBUS_EXTRACTION_CAPMATRIX_HH
