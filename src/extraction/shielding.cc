#include "extraction/shielding.hh"

#include "util/logging.hh"

namespace nanobus {

CapacitanceMatrix
reduceGrounded(const Matrix &maxwell,
               const std::vector<unsigned> &keep)
{
    if (maxwell.rows() != maxwell.cols())
        fatal("reduceGrounded: matrix is %zux%zu", maxwell.rows(),
              maxwell.cols());
    if (keep.empty())
        fatal("reduceGrounded: no conductors kept");
    for (unsigned index : keep) {
        if (index >= maxwell.rows())
            fatal("reduceGrounded: conductor %u out of %zu", index,
                  maxwell.rows());
    }
    // Grounded conductors contribute no potential terms, so the
    // effective Maxwell matrix over the kept conductors is just the
    // corresponding submatrix; the standard conversion then folds
    // shield couplings into ground capacitance via the row sums.
    Matrix sub(keep.size(), keep.size());
    for (size_t r = 0; r < keep.size(); ++r)
        for (size_t c = 0; c < keep.size(); ++c)
            sub(r, c) = maxwell(keep[r], keep[c]);
    return CapacitanceMatrix::fromMaxwell(sub);
}

CapacitanceMatrix
shieldedSignalMatrix(const TechnologyNode &tech, unsigned signals,
                     const BemExtractor::Options &options)
{
    if (signals == 0)
        fatal("shieldedSignalMatrix: need at least one signal");
    unsigned total = 2 * signals - 1;
    BusGeometry geometry = BusGeometry::forTechnology(tech, total);
    Matrix maxwell = BemExtractor(geometry, options).solveMaxwell();
    std::vector<unsigned> keep;
    for (unsigned i = 0; i < total; i += 2)
        keep.push_back(i); // even positions are signals
    return reduceGrounded(maxwell, keep);
}

CapacitanceMatrix
unshieldedSignalMatrix(const TechnologyNode &tech, unsigned signals,
                       const BemExtractor::Options &options)
{
    BusGeometry geometry = BusGeometry::forTechnology(tech, signals);
    return BemExtractor(geometry, options).extract();
}

CapacitanceMatrix
spreadSignalMatrix(const TechnologyNode &tech, unsigned signals,
                   const BemExtractor::Options &options)
{
    BusGeometry geometry = BusGeometry::forTechnology(tech, signals);
    // Same footprint as the shielded layout: pitch doubles, so the
    // edge-to-edge gap becomes s + pitch.
    geometry.spacing = tech.spacing() + geometry.pitch();
    return BemExtractor(geometry, options).extract();
}

} // namespace nanobus
