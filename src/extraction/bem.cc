#include "extraction/bem.hh"

#include <algorithm>
#include <cmath>

#include "exec/parallel.hh"
#include "exec/thread_pool.hh"
#include "la/lu.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace nanobus {

namespace {

/**
 * Antiderivative of ln(sqrt(s^2 + w^2)) with respect to s. w may be 0,
 * in which case the integrand has an integrable singularity at s = 0.
 */
double
lnAntiderivative(double s, double w)
{
    if (s == 0.0)
        return 0.0;
    if (w == 0.0)
        return s * std::log(std::fabs(s)) - s;
    return 0.5 * s * std::log(s * s + w * w) - s +
        w * std::atan(s / w);
}

} // anonymous namespace

BemExtractor::BemExtractor(const BusGeometry &geometry)
    : BemExtractor(geometry, Options())
{
}

BemExtractor::BemExtractor(const BusGeometry &geometry,
                           const Options &options)
    : geometry_(geometry),
      eps_(geometry.epsilon_r * units::epsilon0),
      pool_(options.pool)
{
    geometry_.validate();

    Options opts = options;
    if (opts.panels_per_width < 2)
        opts.panels_per_width = 2;

    // Shrink the resolution if the requested discretization would
    // exceed the panel budget.
    for (;;) {
        double aspect = geometry_.thickness / geometry_.width;
        unsigned nw = opts.panels_per_width;
        unsigned nh = std::max(
            2u, static_cast<unsigned>(std::lround(nw * aspect)));
        size_t per_wire = 2ull * nw + 2ull * nh;
        if (per_wire * geometry_.num_wires <= opts.max_total_panels ||
            nw <= 2) {
            break;
        }
        --opts.panels_per_width;
    }

    for (unsigned wire = 0; wire < geometry_.num_wires; ++wire)
        panelizeWire(wire, opts);

    if (panels_.size() > opts.max_total_panels)
        fatal("BemExtractor: %zu panels exceed the budget of %u; "
              "reduce panels_per_width or wire count",
              panels_.size(), opts.max_total_panels);
}

void
BemExtractor::panelizeWire(unsigned wire, const Options &options)
{
    // Panel coordinates are the BEM collocation boundary: raw from
    // here down.
    const double left = geometry_.wireLeft(wire).raw();
    const double right = left + geometry_.width.raw();
    const double bottom = geometry_.height.raw();
    const double top = bottom + geometry_.thickness.raw();

    const double aspect = geometry_.thickness / geometry_.width;
    const unsigned nw = options.panels_per_width;
    const unsigned nh = std::max(
        2u, static_cast<unsigned>(std::lround(nw * aspect)));

    addSide(wire, left, bottom, right, bottom, nw);  // bottom
    addSide(wire, left, top, right, top, nw);        // top
    addSide(wire, left, bottom, left, top, nh);      // left
    addSide(wire, right, bottom, right, top, nh);    // right
}

void
BemExtractor::addSide(unsigned conductor, double x0, double y0,
                      double x1, double y1, unsigned count)
{
    for (unsigned i = 0; i < count; ++i) {
        double t0 = static_cast<double>(i) / count;
        double t1 = static_cast<double>(i + 1) / count;
        Panel p;
        p.conductor = conductor;
        p.x0 = x0 + (x1 - x0) * t0;
        p.y0 = y0 + (y1 - y0) * t0;
        p.x1 = x0 + (x1 - x0) * t1;
        p.y1 = y0 + (y1 - y0) * t1;
        p.cx = 0.5 * (p.x0 + p.x1);
        p.cy = 0.5 * (p.y0 + p.y1);
        p.length = std::hypot(p.x1 - p.x0, p.y1 - p.y0);
        panels_.push_back(p);
    }
}

double
BemExtractor::lnIntegral(const Panel &panel, double px, double py,
                         bool mirror)
{
    // Mirroring the panel across y = 0 is equivalent to mirroring the
    // observation point; reflect the panel for clarity.
    double x0 = panel.x0, y0 = panel.y0;
    double x1 = panel.x1, y1 = panel.y1;
    if (mirror) {
        y0 = -y0;
        y1 = -y1;
    }
    const double len = panel.length;
    const double dx = (x1 - x0) / len;
    const double dy = (y1 - y0) / len;

    // Local panel frame: u along the panel, w perpendicular.
    const double vx = px - x0;
    const double vy = py - y0;
    const double u = vx * dx + vy * dy;
    const double w = std::fabs(vx * dy - vy * dx);

    return lnAntiderivative(len - u, w) - lnAntiderivative(-u, w);
}

double
BemExtractor::pointPotential(double x, double y, double qx, double qy,
                             double eps)
{
    double r_direct = std::hypot(x - qx, y - qy);
    double r_image = std::hypot(x - qx, y + qy);
    return std::log(r_image / r_direct) / (2.0 * M_PI * eps);
}

Matrix
BemExtractor::solveMaxwell() const
{
    const size_t np = panels_.size();
    const unsigned nc = geometry_.num_wires;
    exec::ThreadPool &pool =
        pool_ ? *pool_ : exec::ThreadPool::global();

    // Collocation matrix: potential at panel i's midpoint from unit
    // total charge (per metre of bus) on panel j, ground plane via
    // the image term. Assembly is row-parallel: every (i, j) entry
    // is written by exactly the task owning row block i, so the
    // matrix is bit-identical at any pool size. Uninitialized
    // backing store on purpose — the assembly below writes every
    // element, and with pinned workers each row block's pages then
    // first-touch onto the node that assembles (and later reads)
    // them instead of the caller's node.
    Matrix p = Matrix::uninitialized(np, np);
    const double scale = 1.0 / (2.0 * M_PI * eps_);
    exec::parallelFor(pool, np, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
            const Panel &obs = panels_[i];
            for (size_t j = 0; j < np; ++j) {
                const Panel &src = panels_[j];
                double direct =
                    lnIntegral(src, obs.cx, obs.cy, false);
                double image = lnIntegral(src, obs.cx, obs.cy, true);
                p(i, j) = scale * (image - direct) / src.length;
            }
        }
    });

    // Factor once (serial: the elimination has loop-carried
    // dependencies), then run the nc independent RHS solves in
    // parallel. LuFactorization::solve is const and pure, and each
    // conductor k owns column k of the Maxwell matrix, with its
    // accumulation order over panels fixed — bit-identical again.
    LuFactorization lu(std::move(p));

    Matrix maxwell(nc, nc);
    exec::parallelFor(
        pool, nc,
        [&](size_t begin, size_t end) {
            std::vector<double> rhs(np);
            for (size_t k = begin; k < end; ++k) {
                for (size_t i = 0; i < np; ++i)
                    rhs[i] = panels_[i].conductor == k ? 1.0 : 0.0;
                std::vector<double> charge = lu.solve(rhs);
                for (size_t i = 0; i < np; ++i)
                    maxwell(panels_[i].conductor,
                            static_cast<unsigned>(k)) += charge[i];
            }
        },
        1);
    return maxwell;
}

CapacitanceMatrix
BemExtractor::extract() const
{
    return CapacitanceMatrix::fromMaxwell(solveMaxwell());
}

} // namespace nanobus
