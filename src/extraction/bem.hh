/**
 * @file
 * Boundary-element capacitance extractor — the FastCap substitute.
 *
 * The paper obtains the full capacitance matrix of a co-planar 32-wire
 * bus from the 3-D FastCap program (Sec 3.2.1). For long parallel bus
 * wires the quantity of interest is per-unit-length capacitance, which
 * a 2-D cross-section solve captures; this module implements that
 * solve from first principles:
 *
 *  - every wire's rectangular cross-section perimeter is discretized
 *    into flat panels carrying piecewise-constant line charge;
 *  - the ground plane under the ILD is enforced exactly with image
 *    charges (log-kernel Green's function of a line charge above a
 *    grounded plane);
 *  - panel-to-point potentials use the closed-form integral of
 *    ln|r| over a segment (no quadrature error);
 *  - collocation at panel midpoints yields a dense system solved by
 *    LU; one solve per excited conductor builds the Maxwell matrix.
 *
 * The dielectric is treated as homogeneous with the node's epsilon_r.
 */

#ifndef NANOBUS_EXTRACTION_BEM_HH
#define NANOBUS_EXTRACTION_BEM_HH

#include <vector>

#include "extraction/capmatrix.hh"
#include "extraction/geometry.hh"
#include "la/matrix.hh"

namespace nanobus {

namespace exec {
class ThreadPool;
} // namespace exec

/** 2-D boundary-element capacitance extractor. */
class BemExtractor
{
  public:
    /** Discretization options. */
    struct Options
    {
        /**
         * Target number of panels along a wire's width; other sides
         * get counts proportional to their length (at least 2 each).
         */
        unsigned panels_per_width = 8;
        /** Hard cap on total panel count across all wires. */
        unsigned max_total_panels = 4096;
        /**
         * Pool for the O(N^2) collocation-matrix assembly (row
         * blocks) and the per-conductor solves. nullptr uses
         * ThreadPool::global(); results are bit-identical at every
         * pool size because each entry is written by exactly one
         * task and accumulation order per conductor is fixed.
         */
        exec::ThreadPool *pool = nullptr;
    };

    /** Extract with default discretization options. */
    explicit BemExtractor(const BusGeometry &geometry);

    /** @param geometry Validated bus cross-section. */
    BemExtractor(const BusGeometry &geometry, const Options &options);

    /** Total number of charge panels in the discretization. */
    size_t panelCount() const { return panels_.size(); }

    /**
     * Maxwell (short-circuit) capacitance matrix [F/m]: M_kk is the
     * total charge on conductor k at 1 V with all others grounded;
     * M_ik (i != k) is the (negative) induced charge on conductor i.
     */
    Matrix solveMaxwell() const;

    /** Convenience: extract and convert to CapacitanceMatrix form. */
    CapacitanceMatrix extract() const;

    /**
     * Potential at (x, y) of a unit line charge at (qx, qy) above the
     * grounded plane y = 0, in a dielectric eps [F/m]:
     * phi = ln(r_image / r_direct) / (2 pi eps).
     * Exposed for testing.
     */
    static double pointPotential(double x, double y, double qx,
                                 double qy, double eps);

  private:
    /** One flat charge panel (axis-aligned segment in 2-D). */
    struct Panel
    {
        double x0, y0;   // start point
        double x1, y1;   // end point
        double cx, cy;   // midpoint (collocation point)
        double length;
        unsigned conductor;
    };

    void panelizeWire(unsigned wire, const Options &options);
    void addSide(unsigned conductor, double x0, double y0, double x1,
                 double y1, unsigned count);

    /**
     * Integral of ln|p - q| dq over a panel (closed form), where p is
     * the observation point.
     */
    static double lnIntegral(const Panel &panel, double px, double py,
                             bool mirror);

    BusGeometry geometry_;
    std::vector<Panel> panels_;
    double eps_; // absolute permittivity [F/m]
    exec::ThreadPool *pool_ = nullptr; // nullptr = global pool
};

} // namespace nanobus

#endif // NANOBUS_EXTRACTION_BEM_HH
