#include "extraction/geometry.hh"

#include "util/logging.hh"

namespace nanobus {

BusGeometry
BusGeometry::forTechnology(const TechnologyNode &tech, unsigned n)
{
    BusGeometry g;
    g.num_wires = n;
    g.width = tech.wire_width;
    g.thickness = tech.wire_thickness;
    g.spacing = tech.spacing();
    g.height = tech.ild_height;
    g.epsilon_r = tech.epsilon_r;
    g.validate();
    return g;
}

void
BusGeometry::validate() const
{
    if (num_wires == 0)
        fatal("BusGeometry: bus must have at least one wire");
    if (width.raw() <= 0.0 || thickness.raw() <= 0.0 ||
        spacing.raw() <= 0.0 || height.raw() <= 0.0)
        fatal("BusGeometry: non-positive dimension "
              "(w=%g t=%g s=%g h=%g)", width.raw(), thickness.raw(),
              spacing.raw(), height.raw());
    if (epsilon_r < 1.0)
        fatal("BusGeometry: epsilon_r %g below vacuum", epsilon_r);
}

} // namespace nanobus
