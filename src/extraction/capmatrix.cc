#include "extraction/capmatrix.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "la/lu.hh"
#include "util/logging.hh"

namespace nanobus {

CapacitanceMatrix::CapacitanceMatrix(unsigned n)
    : n_(n), ground_(n, 0.0), coupling_(n, n, 0.0)
{
    if (n == 0)
        fatal("CapacitanceMatrix: bus must have at least one wire");
}

CapacitanceMatrix
CapacitanceMatrix::fromMaxwell(const Matrix &maxwell)
{
    if (maxwell.rows() != maxwell.cols())
        fatal("CapacitanceMatrix::fromMaxwell: matrix is %zux%zu",
              maxwell.rows(), maxwell.cols());
    const auto n = static_cast<unsigned>(maxwell.rows());
    CapacitanceMatrix cm(n);
    for (unsigned i = 0; i < n; ++i) {
        double row_sum = 0.0;
        for (unsigned j = 0; j < n; ++j) {
            row_sum += maxwell(i, j);
            if (i == j)
                continue;
            // Symmetrize and negate: coupling c_ij = -M_ij.
            double value = -0.5 * (maxwell(i, j) + maxwell(j, i));
            if (value < 0.0)
                value = 0.0; // numerical noise on far pairs
            cm.coupling_(i, j) = value;
            cm.coupling_(j, i) = value;
        }
        if (row_sum < 0.0) {
            warn("fromMaxwell: wire %u has negative ground cap %g; "
                 "clamping to 0", i, row_sum);
            row_sum = 0.0;
        }
        cm.ground_[i] = row_sum;
    }
    return cm;
}

Result<CapacitanceMatrix>
CapacitanceMatrix::tryFromMaxwell(const Matrix &maxwell,
                                  MaxwellValidation *validation)
{
    MaxwellValidation local;
    MaxwellValidation &report = validation ? *validation : local;
    report = MaxwellValidation();

    auto reject = [](ErrorCode code, std::string message) {
        return Result<CapacitanceMatrix>::failure(code,
                                                  std::move(message));
    };

    if (maxwell.rows() != maxwell.cols())
        return reject(ErrorCode::InvalidArgument,
                      "Maxwell matrix is " +
                          std::to_string(maxwell.rows()) + "x" +
                          std::to_string(maxwell.cols()) +
                          ", not square");
    const auto n = static_cast<unsigned>(maxwell.rows());
    if (n == 0)
        return reject(ErrorCode::InvalidArgument,
                      "Maxwell matrix is empty");

    double max_abs = 0.0;
    for (unsigned i = 0; i < n; ++i) {
        for (unsigned j = 0; j < n; ++j) {
            double v = maxwell(i, j);
            if (!std::isfinite(v))
                return reject(ErrorCode::NonFinite,
                              "Maxwell matrix has a non-finite entry");
            max_abs = std::max(max_abs, std::fabs(v));
        }
    }

    char buf[160];

    // Symmetry: M_ij must equal M_ji. Noise-level asymmetry is
    // expected from the BEM collocation; anything beyond tolerance
    // is repaired by averaging (fromMaxwell symmetrizes) and flagged.
    report.max_asymmetry = maxwell.asymmetry();
    const double sym_tol = 1e-9 * max_abs;
    if (report.max_asymmetry > sym_tol) {
        report.symmetrized = true;
        std::snprintf(buf, sizeof(buf),
                      "Maxwell matrix asymmetry %.3g exceeds tolerance "
                      "%.3g; repaired by symmetrization",
                      report.max_asymmetry, sym_tol);
        report.warnings.push_back(buf);
        warn("tryFromMaxwell: %s", buf);
    }

    // Diagonal dominance: each row sum is the wire's ground
    // capacitance and must be non-negative.
    for (unsigned i = 0; i < n; ++i) {
        double row_sum = 0.0;
        for (unsigned j = 0; j < n; ++j)
            row_sum += maxwell(i, j);
        if (row_sum < -sym_tol)
            ++report.dominance_violations;
    }
    if (report.dominance_violations > 0) {
        std::snprintf(buf, sizeof(buf),
                      "%u row(s) violate diagonal dominance (negative "
                      "implied ground capacitance); clamped to 0",
                      report.dominance_violations);
        report.warnings.push_back(buf);
    }

    // Conditioning: an ill-conditioned extraction means the coupling
    // structure downstream models consume is mostly noise.
    Matrix symmetric(n, n);
    for (unsigned i = 0; i < n; ++i)
        for (unsigned j = 0; j < n; ++j)
            symmetric(i, j) = 0.5 * (maxwell(i, j) + maxwell(j, i));
    Result<LuFactorization> lu = LuFactorization::tryFactor(
        std::move(symmetric));
    if (!lu.ok()) {
        report.rcond = 0.0;
        std::snprintf(buf, sizeof(buf),
                      "Maxwell matrix is singular to working precision "
                      "(%s)", lu.error().message.c_str());
        report.warnings.push_back(buf);
        warn("tryFromMaxwell: %s", buf);
    } else {
        report.rcond = lu.value().reciprocalCondition();
        if (report.rcond < 1e-12) {
            std::snprintf(buf, sizeof(buf),
                          "Maxwell matrix is ill-conditioned "
                          "(rcond estimate %.3g)", report.rcond);
            report.warnings.push_back(buf);
            warn("tryFromMaxwell: %s", buf);
        }
    }

    return Result<CapacitanceMatrix>(fromMaxwell(maxwell));
}

const std::vector<double> &
CapacitanceMatrix::defaultNonAdjacentRatios()
{
    // CC2/CC1, CC3/CC1, CC4/CC1 from BEM extraction of the 130 nm
    // ITRS co-planar geometry; consistent with the ~8-10 % total
    // non-adjacent share of Fig 1(b).
    static const std::vector<double> ratios = {0.090, 0.030, 0.011};
    return ratios;
}

CapacitanceMatrix
CapacitanceMatrix::analytical(const TechnologyNode &tech, unsigned n,
                              const std::vector<double> &ratios)
{
    CapacitanceMatrix cm(n);
    const double c_line = tech.c_line.raw();
    const double c_inter = tech.c_inter.raw();
    for (unsigned i = 0; i < n; ++i)
        cm.ground_[i] = c_line;

    // Geometric decay factor for separations beyond the ratio table.
    double decay = 1.0 / 3.0;
    if (ratios.size() >= 2 && ratios[ratios.size() - 2] > 0.0)
        decay = ratios.back() / ratios[ratios.size() - 2];

    for (unsigned i = 0; i < n; ++i) {
        for (unsigned j = i + 1; j < n; ++j) {
            unsigned sep = j - i; // 1 = adjacent
            double value;
            if (sep == 1) {
                value = c_inter;
            } else if (sep - 2 < ratios.size()) {
                value = c_inter * ratios[sep - 2];
            } else {
                double tail = ratios.empty() ? 0.0 : ratios.back();
                value = c_inter * tail *
                    std::pow(decay,
                             static_cast<double>(sep - 1 -
                                                 ratios.size()));
            }
            cm.coupling_(i, j) = value;
            cm.coupling_(j, i) = value;
        }
    }
    return cm;
}

FaradsPerMeter
CapacitanceMatrix::ground(unsigned i) const
{
    if (i >= n_)
        panic("CapacitanceMatrix::ground: wire %u out of %u", i, n_);
    return FaradsPerMeter{ground_[i]};
}

void
CapacitanceMatrix::setGround(unsigned i, FaradsPerMeter value)
{
    if (i >= n_)
        panic("CapacitanceMatrix::setGround: wire %u out of %u", i, n_);
    if (value.raw() < 0.0)
        fatal("CapacitanceMatrix::setGround: negative capacitance %g",
              value.raw());
    ground_[i] = value.raw();
}

FaradsPerMeter
CapacitanceMatrix::coupling(unsigned i, unsigned j) const
{
    if (i >= n_ || j >= n_)
        panic("CapacitanceMatrix::coupling: (%u, %u) out of %u",
              i, j, n_);
    return FaradsPerMeter{coupling_(i, j)};
}

void
CapacitanceMatrix::setCoupling(unsigned i, unsigned j,
                               FaradsPerMeter value)
{
    if (i >= n_ || j >= n_)
        panic("CapacitanceMatrix::setCoupling: (%u, %u) out of %u",
              i, j, n_);
    if (i == j)
        fatal("CapacitanceMatrix::setCoupling: i == j == %u", i);
    if (value.raw() < 0.0)
        fatal("CapacitanceMatrix::setCoupling: negative capacitance %g",
              value.raw());
    coupling_(i, j) = value.raw();
    coupling_(j, i) = value.raw();
}

FaradsPerMeter
CapacitanceMatrix::total(unsigned i) const
{
    if (i >= n_)
        panic("CapacitanceMatrix::total: wire %u out of %u", i, n_);
    double sum = ground_[i];
    for (unsigned j = 0; j < n_; ++j)
        sum += coupling_(i, j);
    return FaradsPerMeter{sum};
}

CapacitanceMatrix::Distribution
CapacitanceMatrix::distribution(unsigned i) const
{
    if (i >= n_)
        panic("CapacitanceMatrix::distribution: wire %u out of %u",
              i, n_);
    double cgnd = ground_[i];
    double cc1 = 0.0, cc2 = 0.0, cc3 = 0.0, ccrest = 0.0;
    for (unsigned j = 0; j < n_; ++j) {
        if (j == i)
            continue;
        unsigned sep = j > i ? j - i : i - j;
        double value = coupling_(i, j);
        if (sep == 1)
            cc1 += value;
        else if (sep == 2)
            cc2 += value;
        else if (sep == 3)
            cc3 += value;
        else
            ccrest += value;
    }
    double tot = cgnd + cc1 + cc2 + cc3 + ccrest;
    Distribution d;
    if (tot <= 0.0)
        return d;
    d.cgnd = cgnd / tot;
    d.cc1 = cc1 / tot;
    d.cc2 = cc2 / tot;
    d.cc3 = cc3 / tot;
    d.ccrest = ccrest / tot;
    return d;
}

CapacitanceMatrix
CapacitanceMatrix::calibratedTo(const TechnologyNode &tech) const
{
    const unsigned centre = n_ / 2;
    double centre_ground = ground_[centre];
    double centre_adjacent = centre + 1 < n_
        ? coupling_(centre, centre + 1)
        : (centre > 0 ? coupling_(centre, centre - 1) : 0.0);
    if (centre_ground <= 0.0)
        fatal("calibratedTo: centre wire has no ground capacitance");
    if (centre_adjacent <= 0.0 && n_ > 1)
        fatal("calibratedTo: centre wire has no adjacent coupling");

    double ground_scale = tech.c_line.raw() / centre_ground;
    double coupling_scale = n_ > 1
        ? tech.c_inter.raw() / centre_adjacent
        : 1.0;

    CapacitanceMatrix out(n_);
    for (unsigned i = 0; i < n_; ++i) {
        out.ground_[i] = ground_[i] * ground_scale;
        for (unsigned j = 0; j < n_; ++j)
            out.coupling_(i, j) = coupling_(i, j) * coupling_scale;
    }
    return out;
}

} // namespace nanobus
