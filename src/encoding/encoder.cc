#include "encoding/encoder.hh"

#include "encoding/schemes.hh"
#include "energy/transition.hh"
#include "util/bitops.hh"
#include "util/contracts.hh"
#include "util/logging.hh"

namespace nanobus {

const std::vector<EncodingScheme> &
paperSchemes()
{
    static const std::vector<EncodingScheme> schemes = {
        EncodingScheme::BusInvert,
        EncodingScheme::OddEvenBusInvert,
        EncodingScheme::CouplingDrivenBusInvert,
        EncodingScheme::Unencoded,
    };
    return schemes;
}

const char *
schemeName(EncodingScheme scheme)
{
    switch (scheme) {
      case EncodingScheme::Unencoded:
        return "unencoded";
      case EncodingScheme::BusInvert:
        return "bus-invert";
      case EncodingScheme::OddEvenBusInvert:
        return "odd-even-bus-invert";
      case EncodingScheme::CouplingDrivenBusInvert:
        return "coupling-driven-bus-invert";
      case EncodingScheme::Gray:
        return "gray";
      case EncodingScheme::T0:
        return "t0";
      case EncodingScheme::Offset:
        return "offset";
    }
    return "?";
}

BusEncoder::BusEncoder(unsigned data_width)
    : data_width_(data_width), data_mask_(lowMask(data_width))
{
    if (data_width == 0 || data_width > 62)
        fatal("BusEncoder: data width %u outside [1, 62]", data_width);
}

void
BusEncoder::encodeBatch(std::span<const uint64_t> data,
                        std::span<uint64_t> bus)
{
    NANOBUS_EXPECT(data.size() == bus.size(),
                   "encodeBatch: %zu data words but %zu bus slots",
                   data.size(), bus.size());
    for (size_t k = 0; k < data.size(); ++k)
        bus[k] = encode(data[k]);
}

unsigned
adjacentCouplingCostReference(uint64_t prev, uint64_t next,
                              unsigned width)
{
    unsigned cost = 0;
    int v_prev = transitionValue(prev, next, 0);
    for (unsigned i = 0; i + 1 < width; ++i) {
        int v_next = transitionValue(prev, next, i + 1);
        int diff = v_prev - v_next;
        cost += static_cast<unsigned>(diff * diff);
        v_prev = v_next;
    }
    return cost;
}

unsigned
adjacentCouplingCost(uint64_t prev, uint64_t next, unsigned width)
{
    if (width < 2)
        return 0;
    // Expand (v_i - v_j)^2 = v_i^2 + v_j^2 - 2 v_i v_j over adjacent
    // pairs and evaluate each sum with mask arithmetic:
    //   v^2 terms   -> changed-bit counts over the low/high pair
    //                  member positions;
    //   v_i v_j     -> +1 when both rise or both fall (same), -1
    //                  when they move oppositely (toggle).
    const uint64_t mask = lowMask(width);
    const uint64_t rising = ~prev & next & mask;
    const uint64_t falling = prev & ~next & mask;
    const uint64_t changed = rising | falling;
    const uint64_t pair_mask = lowMask(width - 1);

    unsigned low_changed = popcount(changed & pair_mask);
    unsigned high_changed = popcount((changed >> 1) & pair_mask);
    unsigned same = popcount(
        ((rising & (rising >> 1)) | (falling & (falling >> 1))) &
        pair_mask);
    unsigned toggle = popcount(
        ((rising & (falling >> 1)) | (falling & (rising >> 1))) &
        pair_mask);

    return low_changed + high_changed - 2 * same + 2 * toggle;
}

std::unique_ptr<BusEncoder>
makeEncoder(EncodingScheme scheme, unsigned data_width)
{
    switch (scheme) {
      case EncodingScheme::Unencoded:
        return std::make_unique<UnencodedBus>(data_width);
      case EncodingScheme::BusInvert:
        return std::make_unique<BusInvert>(data_width);
      case EncodingScheme::OddEvenBusInvert:
        return std::make_unique<OddEvenBusInvert>(data_width);
      case EncodingScheme::CouplingDrivenBusInvert:
        return std::make_unique<CouplingDrivenBusInvert>(data_width);
      case EncodingScheme::Gray:
        return std::make_unique<GrayEncoder>(data_width);
      case EncodingScheme::T0:
        return std::make_unique<T0Encoder>(data_width);
      case EncodingScheme::Offset:
        return std::make_unique<OffsetEncoder>(data_width);
    }
    panic("makeEncoder: unknown scheme %d", static_cast<int>(scheme));
}

} // namespace nanobus
