/**
 * @file
 * Low-power bus encoder interface (Sec 5.2 of the paper).
 *
 * An encoder maps a stream of data words onto a (possibly wider) bus
 * word stream; extra control lines (invert lines) occupy physical bus
 * positions and therefore participate in the energy model like any
 * other line. Encoders are stateful — most schemes decide based on the
 * previously transmitted bus word.
 */

#ifndef NANOBUS_ENCODING_ENCODER_HH
#define NANOBUS_ENCODING_ENCODER_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace nanobus {

/** Encoding schemes known to the factory. */
enum class EncodingScheme {
    Unencoded,
    BusInvert,
    OddEvenBusInvert,
    CouplingDrivenBusInvert,
    Gray,
    T0,
    Offset,
};

/** All schemes evaluated in Fig 3 of the paper, in its order. */
const std::vector<EncodingScheme> &paperSchemes();

/** Scheme name, e.g. "bus-invert". */
const char *schemeName(EncodingScheme scheme);

/**
 * Abstract stateful bus encoder.
 */
class BusEncoder
{
  public:
    virtual ~BusEncoder() = default;

    /** Human-readable scheme name. */
    virtual std::string name() const = 0;

    /** Payload width in bits. */
    unsigned dataWidth() const { return data_width_; }

    /** Physical bus width (payload + control lines). */
    virtual unsigned busWidth() const = 0;

    /**
     * Encode the next data word into the bus word to transmit, and
     * latch it as the encoder's transmitted state.
     */
    virtual uint64_t encode(uint64_t data) = 0;

    /**
     * Encode a run of data words into bus words: `bus[k]` is the bus
     * word for `data[k]`, with encoder state advanced exactly as `n`
     * sequential encode() calls would. The spans must be the same
     * size and may not alias.
     *
     * The base implementation is the per-word loop; the hot schemes
     * (Unencoded, BusInvert, OddEvenBusInvert,
     * CouplingDrivenBusInvert) override it with devirtualized loops
     * that hoist the latched state into locals. Every override is
     * bit-identical to the per-word path (pinned by
     * tests/sim/test_pipeline_batch.cc).
     */
    virtual void encodeBatch(std::span<const uint64_t> data,
                             std::span<uint64_t> bus);

    /**
     * Recover the data word from a received bus word. Stateful
     * schemes (T0) track the decode history themselves; calling
     * decode exactly once per encode, in order, is required.
     */
    virtual uint64_t decode(uint64_t bus_word) = 0;

    /** Reset transmit/receive state to an initial bus word. */
    virtual void reset(uint64_t initial_bus_word) = 0;

    /**
     * Append the encoder's full mutable state to `out` as opaque
     * 64-bit words, for checkpoint/resume (sim/snapshot.hh). A
     * restored encoder continues the stream bit-identically to one
     * that never stopped. Returns false when the encoder does not
     * support snapshotting (the default for out-of-tree encoders);
     * every in-tree scheme overrides both hooks.
     */
    virtual bool captureState(std::vector<uint64_t> &out) const
    {
        (void)out;
        return false;
    }

    /**
     * Restore state captured by captureState() on an identically
     * configured encoder. Returns false when unsupported or when
     * `words` has the wrong shape for this scheme.
     */
    virtual bool restoreState(std::span<const uint64_t> words)
    {
        (void)words;
        return false;
    }

  protected:
    explicit BusEncoder(unsigned data_width);

    unsigned data_width_;
    uint64_t data_mask_;
};

/**
 * Adjacent-pair coupling cost of transmitting `next` after `prev` on
 * a bus of the given width: sum over adjacent pairs of (v_i - v_j)^2
 * — 4 for a Miller-doubled toggle, 1 for a charge/discharge, 0 for
 * idle or same-direction pairs, proportional to the physical pair
 * energy. This is the metric OEBI and CBI minimize. Bit-parallel;
 * O(1) in the bus width.
 */
unsigned adjacentCouplingCost(uint64_t prev, uint64_t next,
                              unsigned width);

/**
 * Straightforward per-pair implementation of adjacentCouplingCost;
 * kept as the oracle for property tests of the bit-parallel version.
 */
unsigned adjacentCouplingCostReference(uint64_t prev, uint64_t next,
                                       unsigned width);

/** Create an encoder of the given scheme for `data_width` payloads. */
std::unique_ptr<BusEncoder> makeEncoder(EncodingScheme scheme,
                                        unsigned data_width);

} // namespace nanobus

#endif // NANOBUS_ENCODING_ENCODER_HH
