#include "encoding/schemes.hh"

#include <algorithm>
#include <string>

#include "util/bitops.hh"
#include "util/contracts.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace nanobus {

namespace {

/** Shared span precondition of the encodeBatch overrides. */
inline void
expectBatchSpans(std::span<const uint64_t> data,
                 std::span<uint64_t> bus)
{
    NANOBUS_EXPECT(data.size() == bus.size(),
                   "encodeBatch: %zu data words but %zu bus slots",
                   data.size(), bus.size());
}

} // anonymous namespace

// ---------------------------------------------------------------- //
// UnencodedBus

UnencodedBus::UnencodedBus(unsigned data_width)
    : BusEncoder(data_width)
{
}

uint64_t
UnencodedBus::encode(uint64_t data)
{
    last_bus_ = data & data_mask_;
    return last_bus_;
}

void
UnencodedBus::encodeBatch(std::span<const uint64_t> data,
                          std::span<uint64_t> bus)
{
    expectBatchSpans(data, bus);
    // Stateless element-wise masking: the whole batch vectorizes.
    simd::maskInto(bus.data(), data.data(), data_mask_, data.size());
    if (!bus.empty())
        last_bus_ = bus[bus.size() - 1];
}

uint64_t
UnencodedBus::decode(uint64_t bus_word)
{
    return bus_word & data_mask_;
}

void
UnencodedBus::reset(uint64_t initial_bus_word)
{
    last_bus_ = initial_bus_word & data_mask_;
}

// ---------------------------------------------------------------- //
// BusInvert

BusInvert::BusInvert(unsigned data_width)
    : BusEncoder(data_width)
{
}

uint64_t
BusInvert::encode(uint64_t data)
{
    data &= data_mask_;
    const uint64_t last_payload = last_bus_ & data_mask_;
    const bool last_invert = bitOf(last_bus_, data_width_);

    unsigned distance = popcount(data ^ last_payload);
    bool invert;
    if (2 * distance > data_width_) {
        invert = true;
    } else if (2 * distance == data_width_) {
        // Tie: keep the invert line steady to avoid a gratuitous
        // transition on it (the payload cost is identical).
        invert = last_invert;
    } else {
        invert = false;
    }

    uint64_t payload = invert ? (~data & data_mask_) : data;
    last_bus_ = payload | (static_cast<uint64_t>(invert)
                           << data_width_);
    return last_bus_;
}

void
BusInvert::encodeBatch(std::span<const uint64_t> data,
                       std::span<uint64_t> bus)
{
    expectBatchSpans(data, bus);
    // Same decision logic as encode(), with the latched bus word
    // hoisted into a register for the whole run.
    const uint64_t mask = data_mask_;
    const unsigned width = data_width_;
    uint64_t last = last_bus_;
    for (size_t k = 0; k < data.size(); ++k) {
        const uint64_t d = data[k] & mask;
        const uint64_t last_payload = last & mask;
        const bool last_invert = bitOf(last, width);

        const unsigned distance = popcount(d ^ last_payload);
        bool invert;
        if (2 * distance > width) {
            invert = true;
        } else if (2 * distance == width) {
            invert = last_invert;
        } else {
            invert = false;
        }

        const uint64_t payload = invert ? (~d & mask) : d;
        last = payload | (static_cast<uint64_t>(invert) << width);
        bus[k] = last;
    }
    last_bus_ = last;
}

uint64_t
BusInvert::decode(uint64_t bus_word)
{
    uint64_t payload = bus_word & data_mask_;
    return bitOf(bus_word, data_width_) ? (~payload & data_mask_)
                                        : payload;
}

void
BusInvert::reset(uint64_t initial_bus_word)
{
    last_bus_ = initial_bus_word & lowMask(busWidth());
}

// ---------------------------------------------------------------- //
// OddEvenBusInvert

OddEvenBusInvert::OddEvenBusInvert(unsigned data_width)
    : BusEncoder(data_width)
{
}

uint64_t
OddEvenBusInvert::buildBusWord(uint64_t payload, bool invert_odd,
                               bool invert_even) const
{
    // Layout (paper, Sec 5.2.1): odd-invert line at bus LSB, payload
    // shifted up one, even-invert line at bus MSB.
    return (static_cast<uint64_t>(invert_even) << (data_width_ + 1)) |
        ((payload & data_mask_) << 1) |
        static_cast<uint64_t>(invert_odd);
}

uint64_t
OddEvenBusInvert::encode(uint64_t data)
{
    data &= data_mask_;

    uint64_t best_word = 0;
    unsigned best_cost = ~0u;
    // Modes: 00 none, 01 even inverted, 10 odd inverted, 11 all
    // inverted; evaluated on the full bus word so invert-line
    // transitions count toward the cost too.
    for (unsigned mode = 0; mode < 4; ++mode) {
        bool inv_even = mode & 1;
        bool inv_odd = mode & 2;
        uint64_t payload = data;
        if (inv_even)
            payload ^= evenMask(data_width_);
        if (inv_odd)
            payload ^= oddMask(data_width_);
        uint64_t word = buildBusWord(payload, inv_odd, inv_even);
        unsigned cost = adjacentCouplingCost(last_bus_, word,
                                             busWidth());
        if (cost < best_cost) {
            best_cost = cost;
            best_word = word;
        }
    }
    last_bus_ = best_word;
    return last_bus_;
}

void
OddEvenBusInvert::encodeBatch(std::span<const uint64_t> data,
                              std::span<uint64_t> bus)
{
    expectBatchSpans(data, bus);
    const uint64_t mask = data_mask_;
    const uint64_t even_mask = evenMask(data_width_);
    const uint64_t odd_mask = oddMask(data_width_);
    const unsigned width = busWidth();
    uint64_t last = last_bus_;
    for (size_t k = 0; k < data.size(); ++k) {
        const uint64_t d = data[k] & mask;
        uint64_t best_word = 0;
        unsigned best_cost = ~0u;
        for (unsigned mode = 0; mode < 4; ++mode) {
            const bool inv_even = mode & 1;
            const bool inv_odd = mode & 2;
            uint64_t payload = d;
            if (inv_even)
                payload ^= even_mask;
            if (inv_odd)
                payload ^= odd_mask;
            const uint64_t word =
                buildBusWord(payload, inv_odd, inv_even);
            const unsigned cost =
                adjacentCouplingCost(last, word, width);
            if (cost < best_cost) {
                best_cost = cost;
                best_word = word;
            }
        }
        last = best_word;
        bus[k] = last;
    }
    last_bus_ = last;
}

uint64_t
OddEvenBusInvert::decode(uint64_t bus_word)
{
    bool inv_odd = bitOf(bus_word, 0);
    bool inv_even = bitOf(bus_word, data_width_ + 1);
    uint64_t payload = (bus_word >> 1) & data_mask_;
    if (inv_even)
        payload ^= evenMask(data_width_);
    if (inv_odd)
        payload ^= oddMask(data_width_);
    return payload;
}

void
OddEvenBusInvert::reset(uint64_t initial_bus_word)
{
    last_bus_ = initial_bus_word & lowMask(busWidth());
}

// ---------------------------------------------------------------- //
// CouplingDrivenBusInvert

CouplingDrivenBusInvert::CouplingDrivenBusInvert(unsigned data_width)
    : BusEncoder(data_width)
{
}

uint64_t
CouplingDrivenBusInvert::encode(uint64_t data)
{
    data &= data_mask_;
    // Invert line is the bus MSB (bit data_width_).
    uint64_t plain = data;
    uint64_t inverted = (~data & data_mask_) |
        (1ull << data_width_);

    unsigned cost_plain = adjacentCouplingCost(last_bus_, plain,
                                               busWidth());
    unsigned cost_inverted = adjacentCouplingCost(last_bus_, inverted,
                                                  busWidth());
    // Invert only on a strict win, per Kim et al.
    last_bus_ = cost_inverted < cost_plain ? inverted : plain;
    return last_bus_;
}

void
CouplingDrivenBusInvert::encodeBatch(std::span<const uint64_t> data,
                                     std::span<uint64_t> bus)
{
    expectBatchSpans(data, bus);
    const uint64_t mask = data_mask_;
    const uint64_t invert_bit = 1ull << data_width_;
    const unsigned width = busWidth();
    uint64_t last = last_bus_;
    for (size_t k = 0; k < data.size(); ++k) {
        const uint64_t d = data[k] & mask;
        const uint64_t plain = d;
        const uint64_t inverted = (~d & mask) | invert_bit;

        const unsigned cost_plain =
            adjacentCouplingCost(last, plain, width);
        const unsigned cost_inverted =
            adjacentCouplingCost(last, inverted, width);
        last = cost_inverted < cost_plain ? inverted : plain;
        bus[k] = last;
    }
    last_bus_ = last;
}

uint64_t
CouplingDrivenBusInvert::decode(uint64_t bus_word)
{
    uint64_t payload = bus_word & data_mask_;
    return bitOf(bus_word, data_width_) ? (~payload & data_mask_)
                                        : payload;
}

void
CouplingDrivenBusInvert::reset(uint64_t initial_bus_word)
{
    last_bus_ = initial_bus_word & lowMask(busWidth());
}

// ---------------------------------------------------------------- //
// GrayEncoder

GrayEncoder::GrayEncoder(unsigned data_width)
    : BusEncoder(data_width)
{
}

uint64_t
GrayEncoder::encode(uint64_t data)
{
    return toGray(data & data_mask_) & data_mask_;
}

void
GrayEncoder::encodeBatch(std::span<const uint64_t> data,
                         std::span<uint64_t> bus)
{
    expectBatchSpans(data, bus);
    // Gray coding is stateless and element-wise, so the batch is one
    // vectorized pass; grayInto masks each input before the shift,
    // matching encode()'s toGray(data & mask) word for word.
    simd::grayInto(bus.data(), data.data(), data_mask_, data.size());
}

uint64_t
GrayEncoder::decode(uint64_t bus_word)
{
    return fromGray(bus_word & data_mask_) & data_mask_;
}

void
GrayEncoder::reset(uint64_t)
{
}

// ---------------------------------------------------------------- //
// T0Encoder

T0Encoder::T0Encoder(unsigned data_width, uint64_t stride)
    : BusEncoder(data_width), stride_(stride)
{
    if (stride == 0)
        fatal("T0Encoder: stride must be positive");
}

uint64_t
T0Encoder::encode(uint64_t data)
{
    data &= data_mask_;
    const uint64_t inc_bit = 1ull << data_width_;

    if (tx_primed_ &&
        data == ((last_data_tx_ + stride_) & data_mask_)) {
        // In-stride: freeze the payload, raise INC.
        last_bus_ = (last_bus_ & data_mask_) | inc_bit;
    } else {
        last_bus_ = data;
    }
    last_data_tx_ = data;
    tx_primed_ = true;
    return last_bus_;
}

uint64_t
T0Encoder::decode(uint64_t bus_word)
{
    if (bitOf(bus_word, data_width_)) {
        if (!rx_primed_)
            fatal("T0Encoder::decode: INC received before any data");
        last_data_rx_ = (last_data_rx_ + stride_) & data_mask_;
    } else {
        last_data_rx_ = bus_word & data_mask_;
    }
    rx_primed_ = true;
    return last_data_rx_;
}

void
T0Encoder::reset(uint64_t initial_bus_word)
{
    last_bus_ = initial_bus_word & lowMask(busWidth());
    last_data_tx_ = last_bus_ & data_mask_;
    last_data_rx_ = last_data_tx_;
    tx_primed_ = true;
    rx_primed_ = true;
}

// ---------------------------------------------------------------- //
// SegmentedBusInvert

SegmentedBusInvert::SegmentedBusInvert(unsigned data_width,
                                       unsigned segments)
    : BusEncoder(data_width), segments_(segments)
{
    if (segments == 0 || segments > data_width)
        fatal("SegmentedBusInvert: %u segments for %u data bits",
              segments, data_width);
    if (data_width + segments > 62)
        fatal("SegmentedBusInvert: bus width %u exceeds 62",
              data_width + segments);
}

std::string
SegmentedBusInvert::name() const
{
    return "segmented-bus-invert-" + std::to_string(segments_);
}

std::pair<unsigned, unsigned>
SegmentedBusInvert::segmentRange(unsigned s) const
{
    if (s >= segments_)
        panic("SegmentedBusInvert: segment %u out of %u", s,
              segments_);
    // Spread the width as evenly as possible; early segments take
    // the remainder.
    unsigned base = data_width_ / segments_;
    unsigned extra = data_width_ % segments_;
    unsigned lo = s * base + std::min(s, extra);
    unsigned len = base + (s < extra ? 1 : 0);
    return {lo, lo + len};
}

uint64_t
SegmentedBusInvert::encode(uint64_t data)
{
    data &= data_mask_;
    uint64_t word = 0;
    for (unsigned s = 0; s < segments_; ++s) {
        auto [lo, hi] = segmentRange(s);
        unsigned len = hi - lo;
        uint64_t seg_mask = lowMask(len);
        uint64_t seg_data = (data >> lo) & seg_mask;
        uint64_t seg_prev = (last_bus_ >> lo) & seg_mask;
        bool last_invert = bitOf(last_bus_, data_width_ + s);

        unsigned distance = popcount(seg_data ^ seg_prev);
        bool invert;
        if (2 * distance > len)
            invert = true;
        else if (2 * distance == len)
            invert = last_invert; // tie: keep the line steady
        else
            invert = false;

        uint64_t payload = invert ? (~seg_data & seg_mask)
                                  : seg_data;
        word |= payload << lo;
        word |= static_cast<uint64_t>(invert)
            << (data_width_ + s);
    }
    last_bus_ = word;
    return word;
}

uint64_t
SegmentedBusInvert::decode(uint64_t bus_word)
{
    uint64_t data = 0;
    for (unsigned s = 0; s < segments_; ++s) {
        auto [lo, hi] = segmentRange(s);
        uint64_t seg_mask = lowMask(hi - lo);
        uint64_t payload = (bus_word >> lo) & seg_mask;
        if (bitOf(bus_word, data_width_ + s))
            payload = ~payload & seg_mask;
        data |= payload << lo;
    }
    return data;
}

void
SegmentedBusInvert::reset(uint64_t initial_bus_word)
{
    last_bus_ = initial_bus_word & lowMask(busWidth());
}

// ---------------------------------------------------------------- //
// OffsetEncoder

OffsetEncoder::OffsetEncoder(unsigned data_width)
    : BusEncoder(data_width)
{
}

uint64_t
OffsetEncoder::encode(uint64_t data)
{
    data &= data_mask_;
    uint64_t diff = (data - last_data_tx_) & data_mask_;
    last_data_tx_ = data;
    return diff;
}

void
OffsetEncoder::encodeBatch(std::span<const uint64_t> data,
                           std::span<uint64_t> bus)
{
    expectBatchSpans(data, bus);
    if (data.empty())
        return;
    // The difference chain looks serial but each output depends only
    // on two *inputs* — bus[k] = (data[k] - data[k-1]) & mask — so
    // the whole batch vectorizes against a shifted copy of itself.
    // Truncation to the data width makes the pre-masking of encode()
    // redundant: subtraction mod 2^64 then & mask equals subtraction
    // mod 2^width. State hoists to the edges: the held word seeds
    // element 0 and the final masked input becomes the new held word.
    simd::diffInto(bus.data(), data.data(), last_data_tx_,
                   data_mask_, data.size());
    last_data_tx_ = data[data.size() - 1] & data_mask_;
}

uint64_t
OffsetEncoder::decode(uint64_t bus_word)
{
    acc_rx_ = (acc_rx_ + (bus_word & data_mask_)) & data_mask_;
    return acc_rx_;
}

void
OffsetEncoder::reset(uint64_t initial_bus_word)
{
    // Both sides agree the accumulator starts at the initial word.
    last_data_tx_ = initial_bus_word & data_mask_;
    acc_rx_ = last_data_tx_;
}

// ------------------------------------------------------------------ //
// Checkpoint state capture (encoder.hh captureState/restoreState).
//
// Each scheme serializes exactly its mutable members, in declaration
// order, as opaque u64 words; restoreState validates the word count
// so a snapshot from a different scheme shape is rejected instead of
// silently misinterpreted. The invert family and the pass-through
// bus share the single-word {last_bus_} layout.

bool
UnencodedBus::captureState(std::vector<uint64_t> &out) const
{
    out.push_back(last_bus_);
    return true;
}

bool
UnencodedBus::restoreState(std::span<const uint64_t> words)
{
    if (words.size() != 1)
        return false;
    last_bus_ = words[0];
    return true;
}

bool
BusInvert::captureState(std::vector<uint64_t> &out) const
{
    out.push_back(last_bus_);
    return true;
}

bool
BusInvert::restoreState(std::span<const uint64_t> words)
{
    if (words.size() != 1)
        return false;
    last_bus_ = words[0];
    return true;
}

bool
OddEvenBusInvert::captureState(std::vector<uint64_t> &out) const
{
    out.push_back(last_bus_);
    return true;
}

bool
OddEvenBusInvert::restoreState(std::span<const uint64_t> words)
{
    if (words.size() != 1)
        return false;
    last_bus_ = words[0];
    return true;
}

bool
CouplingDrivenBusInvert::captureState(std::vector<uint64_t> &out) const
{
    out.push_back(last_bus_);
    return true;
}

bool
CouplingDrivenBusInvert::restoreState(std::span<const uint64_t> words)
{
    if (words.size() != 1)
        return false;
    last_bus_ = words[0];
    return true;
}

bool
GrayEncoder::captureState(std::vector<uint64_t> &) const
{
    // Stateless: the empty capture still reports "supported".
    return true;
}

bool
GrayEncoder::restoreState(std::span<const uint64_t> words)
{
    return words.empty();
}

bool
T0Encoder::captureState(std::vector<uint64_t> &out) const
{
    out.push_back(last_bus_);
    out.push_back(last_data_tx_);
    out.push_back(last_data_rx_);
    out.push_back((tx_primed_ ? 1u : 0u) | (rx_primed_ ? 2u : 0u));
    return true;
}

bool
T0Encoder::restoreState(std::span<const uint64_t> words)
{
    if (words.size() != 4 || (words[3] & ~uint64_t{3}) != 0)
        return false;
    last_bus_ = words[0];
    last_data_tx_ = words[1];
    last_data_rx_ = words[2];
    tx_primed_ = (words[3] & 1) != 0;
    rx_primed_ = (words[3] & 2) != 0;
    return true;
}

bool
SegmentedBusInvert::captureState(std::vector<uint64_t> &out) const
{
    out.push_back(last_bus_);
    return true;
}

bool
SegmentedBusInvert::restoreState(std::span<const uint64_t> words)
{
    if (words.size() != 1)
        return false;
    last_bus_ = words[0];
    return true;
}

bool
OffsetEncoder::captureState(std::vector<uint64_t> &out) const
{
    out.push_back(last_data_tx_);
    out.push_back(acc_rx_);
    return true;
}

bool
OffsetEncoder::restoreState(std::span<const uint64_t> words)
{
    if (words.size() != 2)
        return false;
    last_data_tx_ = words[0];
    acc_rx_ = words[1];
    return true;
}

} // namespace nanobus
