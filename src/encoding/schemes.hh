/**
 * @file
 * Concrete bus encoding schemes.
 *
 * Line layouts follow the paper's implementation notes (Sec 5.2.1):
 *  - Bus-invert and coupling-driven bus-invert place their single
 *    invert line as the bus MSB (bit data_width).
 *  - Odd/even bus-invert places the odd-invert line as the bus LSB
 *    (bit 0, payload shifted up by one) and the even-invert line as
 *    the bus MSB (bit data_width + 1).
 */

#ifndef NANOBUS_ENCODING_SCHEMES_HH
#define NANOBUS_ENCODING_SCHEMES_HH

#include <utility>

#include "encoding/encoder.hh"

namespace nanobus {

/** Pass-through: bus word == data word. */
class UnencodedBus : public BusEncoder
{
  public:
    explicit UnencodedBus(unsigned data_width);

    std::string name() const override { return "unencoded"; }
    unsigned busWidth() const override { return data_width_; }
    uint64_t encode(uint64_t data) override;
    void encodeBatch(std::span<const uint64_t> data,
                     std::span<uint64_t> bus) override;
    uint64_t decode(uint64_t bus_word) override;
    void reset(uint64_t initial_bus_word) override;
    bool captureState(std::vector<uint64_t> &out) const override;
    bool restoreState(std::span<const uint64_t> words) override;

  private:
    uint64_t last_bus_ = 0;
};

/**
 * Bus-invert coding (Stan & Burleson 1995): invert the word when its
 * Hamming distance to the previously transmitted payload exceeds half
 * the width; signal on the invert line. Reduces self transitions.
 */
class BusInvert : public BusEncoder
{
  public:
    explicit BusInvert(unsigned data_width);

    std::string name() const override { return "bus-invert"; }
    unsigned busWidth() const override { return data_width_ + 1; }
    uint64_t encode(uint64_t data) override;
    void encodeBatch(std::span<const uint64_t> data,
                     std::span<uint64_t> bus) override;
    uint64_t decode(uint64_t bus_word) override;
    void reset(uint64_t initial_bus_word) override;
    bool captureState(std::vector<uint64_t> &out) const override;
    bool restoreState(std::span<const uint64_t> words) override;

  private:
    uint64_t last_bus_ = 0;
};

/**
 * Odd/even bus-invert (Zhang et al. 2002): odd and even bit positions
 * are invertible independently; of the four inversion modes the one
 * with the lowest adjacent coupling cost (over the full bus word,
 * invert lines included) is transmitted.
 */
class OddEvenBusInvert : public BusEncoder
{
  public:
    explicit OddEvenBusInvert(unsigned data_width);

    std::string name() const override { return "odd-even-bus-invert"; }
    unsigned busWidth() const override { return data_width_ + 2; }
    uint64_t encode(uint64_t data) override;
    void encodeBatch(std::span<const uint64_t> data,
                     std::span<uint64_t> bus) override;
    uint64_t decode(uint64_t bus_word) override;
    void reset(uint64_t initial_bus_word) override;
    bool captureState(std::vector<uint64_t> &out) const override;
    bool restoreState(std::span<const uint64_t> words) override;

  private:
    uint64_t buildBusWord(uint64_t payload, bool invert_odd,
                          bool invert_even) const;

    uint64_t last_bus_ = 0;
};

/**
 * Coupling-driven bus-invert (Kim et al. 2000): invert the whole word
 * (one invert line) when the inverted pattern has strictly lower
 * adjacent coupling cost than the original.
 */
class CouplingDrivenBusInvert : public BusEncoder
{
  public:
    explicit CouplingDrivenBusInvert(unsigned data_width);

    std::string name() const override
    {
        return "coupling-driven-bus-invert";
    }
    unsigned busWidth() const override { return data_width_ + 1; }
    uint64_t encode(uint64_t data) override;
    void encodeBatch(std::span<const uint64_t> data,
                     std::span<uint64_t> bus) override;
    uint64_t decode(uint64_t bus_word) override;
    void reset(uint64_t initial_bus_word) override;
    bool captureState(std::vector<uint64_t> &out) const override;
    bool restoreState(std::span<const uint64_t> words) override;

  private:
    uint64_t last_bus_ = 0;
};

/**
 * Binary-reflected Gray code (extension; not in the paper's Fig 3).
 * Sequential addresses differ in exactly one bus line.
 */
class GrayEncoder : public BusEncoder
{
  public:
    explicit GrayEncoder(unsigned data_width);

    std::string name() const override { return "gray"; }
    unsigned busWidth() const override { return data_width_; }
    uint64_t encode(uint64_t data) override;
    void encodeBatch(std::span<const uint64_t> data,
                     std::span<uint64_t> bus) override;
    uint64_t decode(uint64_t bus_word) override;
    void reset(uint64_t initial_bus_word) override;
    bool captureState(std::vector<uint64_t> &out) const override;
    bool restoreState(std::span<const uint64_t> words) override;
};

/**
 * T0 coding (extension): an INC line signals "previous address +
 * stride"; the payload freezes during sequential runs, eliminating
 * all payload transitions for in-stride streams.
 */
class T0Encoder : public BusEncoder
{
  public:
    /** @param stride Address increment signalled by the INC line. */
    T0Encoder(unsigned data_width, uint64_t stride = 4);

    std::string name() const override { return "t0"; }
    unsigned busWidth() const override { return data_width_ + 1; }
    uint64_t encode(uint64_t data) override;
    uint64_t decode(uint64_t bus_word) override;
    void reset(uint64_t initial_bus_word) override;
    bool captureState(std::vector<uint64_t> &out) const override;
    bool restoreState(std::span<const uint64_t> words) override;

  private:
    uint64_t stride_;
    uint64_t last_bus_ = 0;
    uint64_t last_data_tx_ = 0;
    uint64_t last_data_rx_ = 0;
    bool tx_primed_ = false;
    bool rx_primed_ = false;
};

/**
 * Segmented (partial) bus-invert (extension): the bus is split into
 * `segments` contiguous groups, each with its own invert line and an
 * independent majority vote. Finer segmentation catches localized
 * bursts (e.g. a flipping low-order byte) that a whole-bus vote
 * misses, at one extra line per segment. Invert lines occupy the bus
 * MSB positions, one per segment in ascending segment order.
 */
class SegmentedBusInvert : public BusEncoder
{
  public:
    /**
     * @param data_width Payload width.
     * @param segments Number of groups (1 = classic bus-invert);
     *        must not exceed data_width.
     */
    SegmentedBusInvert(unsigned data_width, unsigned segments);

    std::string name() const override;
    unsigned busWidth() const override
    {
        return data_width_ + segments_;
    }
    uint64_t encode(uint64_t data) override;
    uint64_t decode(uint64_t bus_word) override;
    void reset(uint64_t initial_bus_word) override;
    bool captureState(std::vector<uint64_t> &out) const override;
    bool restoreState(std::span<const uint64_t> words) override;

    /** Payload bit range [lo, hi) of segment s. */
    std::pair<unsigned, unsigned> segmentRange(unsigned s) const;

  private:
    unsigned segments_;
    uint64_t last_bus_ = 0;
};

/**
 * Offset (difference-based) coding (extension): transmit the
 * arithmetic difference data(t) - data(t-1) mod 2^w; the receiver
 * accumulates. In-stride address streams produce a constant bus word
 * (the stride), eliminating transitions entirely without any extra
 * line — the natural exploit of the sequentiality that defeats the
 * bus-invert family in the paper's Fig 3.
 */
class OffsetEncoder : public BusEncoder
{
  public:
    explicit OffsetEncoder(unsigned data_width);

    std::string name() const override { return "offset"; }
    unsigned busWidth() const override { return data_width_; }
    uint64_t encode(uint64_t data) override;
    void encodeBatch(std::span<const uint64_t> data,
                     std::span<uint64_t> bus) override;
    uint64_t decode(uint64_t bus_word) override;
    void reset(uint64_t initial_bus_word) override;
    bool captureState(std::vector<uint64_t> &out) const override;
    bool restoreState(std::span<const uint64_t> words) override;

  private:
    uint64_t last_data_tx_ = 0;
    uint64_t acc_rx_ = 0;
};

} // namespace nanobus

#endif // NANOBUS_ENCODING_SCHEMES_HH
